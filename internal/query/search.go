// Skew-aware batched query engine. The naive Section V implementations in
// query.go split a batch into p static chunks and decode full rows; under
// the power-law degree skew the paper targets, one chunk that draws a hub
// node runs orders of magnitude longer than its siblings. This file is the
// engine the public API routes through instead:
//
//   - Existence queries go zero-decode: sources that can search their own
//     rows in place (Searcher — bit-packed CSR binary/galloping search,
//     plain CSR early-exit binary search, delta CSR early-exit sequential
//     decode) are probed without ever materializing a row.
//   - Batches are scheduled with parallel.ForDynamic's work-stealing grabs
//     instead of static chunks, with a degree-aware grain so hub-heavy
//     batches stay balanced.
//   - Single-query row splitting (Algorithm 8) searches packed subranges
//     directly via RangeSearcher.
package query

import (
	"sync/atomic"

	"csrgraph/internal/edgelist"
	"csrgraph/internal/obs"
	"csrgraph/internal/parallel"
	"csrgraph/internal/trace"
)

// Searcher is a Source that can answer an existence query by searching a
// row in place, without materializing it. csr.Packed (binary/galloping
// search over the packed bits), csr.Matrix (early-exit binary search) and
// csr.DeltaPacked (early-exit sequential decode) all qualify.
type Searcher interface {
	SearchRow(u, v edgelist.NodeID) bool
}

// RangeSearcher is a Source whose rows live in one indexable column array
// that can be searched by subrange — the split geometry Algorithm 8 needs.
// csr.Packed and csr.Matrix qualify.
type RangeSearcher interface {
	RowBounds(u edgelist.NodeID) (start, end int)
	SearchRange(start, end int, v edgelist.NodeID) bool
}

// grainTargetWork is the decode work (in neighbors) one work-stealing grab
// should amortize: large enough that the atomic cursor traffic is noise,
// small enough that a grab landing on a hub does not recreate the static-
// chunk imbalance.
const grainTargetWork = 4096

// searchGrain is the grab size for zero-decode existence batches, whose
// per-query cost is O(log degree) — near-uniform, so only the cursor
// amortization matters.
const searchGrain = 256

// AvgDegreeHinter is a Source that has already computed its average degree
// once, so per-batch grain sizing reads a field instead of re-deriving the
// estimate from NumEdges/NumNodes on every call. Wrappers that sit between
// the scheduler and the raw CSR (the hot-row cache, the shard engines'
// per-shard sources) implement it: a sharded router fans one request out
// into many small per-shard sub-batches, and without the hint every leg
// would repay the degree probe through the whole wrapper chain.
type AvgDegreeHinter interface {
	// AvgDegreeHint returns ceil-ish average out-degree (>= 1).
	AvgDegreeHint() int
}

// avgDegreeOf derives the average-degree estimate dynamicGrain sizes grabs
// with: the precomputed hint when the source carries one, the
// NumEdges/NumNodes probe otherwise, and a flat default for sources that
// expose neither.
//
//csr:hotpath
func avgDegreeOf(g Source) int {
	if h, ok := g.(AvgDegreeHinter); ok {
		if avg := h.AvgDegreeHint(); avg > 0 {
			return avg
		}
	}
	if ec, ok := g.(interface{ NumEdges() int }); ok && g.NumNodes() > 0 {
		return ec.NumEdges()/g.NumNodes() + 1
	}
	return 8
}

// dynamicGrain picks the work-stealing grab size for row-decoding batches
// over g: roughly grainTargetWork neighbors of expected decode work per
// grab (via the source's average degree), bounded so a batch still splits
// into at least ~4 grabs per processor.
//
//csr:hotpath
func dynamicGrain(g Source, n, p int) int {
	grain := grainTargetWork / avgDegreeOf(g)
	if limit := n / (4 * p); grain > limit {
		grain = limit
	}
	if grain < 1 {
		grain = 1
	}
	return grain
}

// clampProcs bounds p to something the per-worker scratch allocation can
// size: at most one worker per query.
//
//csr:hotpath
func clampProcs(p, n int) int {
	if p > n {
		p = n
	}
	if p < 1 {
		p = 1
	}
	return p
}

// EdgesExistBatchSearch answers an array of edge-existence queries with p
// processors, scheduled by work stealing. On a Searcher the rows are
// probed in place (zero-decode: O(log d) packed random accesses per query
// instead of an O(d) row decode); any other source falls back to decoding
// each row into a per-worker buffer and binary-searching it.
func EdgesExistBatchSearch(g Source, edges []edgelist.Edge, p int) []bool {
	return EdgesExistBatchSearchTraced(g, edges, p, nil)
}

// EdgesExistBatchSearchTraced is EdgesExistBatchSearch stamping spans into
// tr: a schedule span, then a search span (zero-decode path) or a decode
// span (fallback), so a trace shows which dispatch the batch actually took.
func EdgesExistBatchSearchTraced(g Source, edges []edgelist.Edge, p int, tr *trace.Trace) []bool {
	start := obs.Now()
	ts := tr.Now()
	results := make([]bool, len(edges))
	p = clampProcs(p, len(edges))
	if s, ok := g.(Searcher); ok {
		dispatchSearch.Inc()
		tr.Span(trace.StageSchedule, len(edges), ts)
		tx := tr.Now()
		parallel.ForDynamic(len(edges), p, searchGrain, func(_ int, r parallel.Range) {
			for i := r.Start; i < r.End; i++ {
				results[i] = s.SearchRow(edges[i].U, edges[i].V)
			}
		})
		tr.Span(trace.StageSearch, len(edges), tx)
		existsBatchSize.Observe(int64(len(edges)))
		obs.Tick(existsBatchSeconds, start)
		return results
	}
	dispatchDecode.Inc()
	grain := dynamicGrain(g, len(edges), p)
	bufs := make([][]uint32, p)
	tr.Span(trace.StageSchedule, len(edges), ts)
	tx := tr.Now()
	parallel.ForDynamic(len(edges), p, grain, func(w int, r parallel.Range) {
		for i := r.Start; i < r.End; i++ {
			e := edges[i]
			buf := g.Row(bufs[w], e.U)
			bufs[w] = buf
			lo, hi := 0, len(buf)
			for lo < hi {
				mid := int(uint(lo+hi) >> 1)
				if buf[mid] < e.V {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			results[i] = lo < len(buf) && buf[lo] == e.V
		}
	})
	tr.Span(trace.StageDecode, len(edges), tx)
	existsBatchSize.Observe(int64(len(edges)))
	obs.Tick(existsBatchSeconds, start)
	return results
}

// EdgeExistsSplitSearch answers one (u, v) existence query by splitting
// u's row among p processors (Algorithm 8) without decoding it: each
// processor binary-searches its packed subrange via RangeSearcher, and a
// shared flag short-circuits siblings once any of them finds v. Sources
// without subrange search fall back to the decoded scan of
// EdgeExistsSplit.
func EdgeExistsSplitSearch(g Source, u, v edgelist.NodeID, p int) bool {
	rs, ok := g.(RangeSearcher)
	if !ok {
		return EdgeExistsSplit(g, u, v, p)
	}
	start, end := rs.RowBounds(u)
	var found atomic.Bool
	parallel.For(end-start, p, func(_ int, r parallel.Range) {
		if found.Load() {
			return
		}
		if rs.SearchRange(start+r.Start, start+r.End, v) {
			found.Store(true)
		}
	})
	return found.Load()
}
