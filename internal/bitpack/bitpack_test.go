package bitpack

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func randVals(n int, max uint32, seed int64) []uint32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]uint32, n)
	for i := range out {
		out[i] = uint32(uint64(rng.Uint32()) % (uint64(max) + 1))
	}
	return out
}

func TestWidthFor(t *testing.T) {
	cases := map[uint32]int{0: 1, 1: 1, 2: 2, 3: 2, 4: 3, 255: 8, 256: 9, 0xFFFFFFFF: 32}
	for max, want := range cases {
		if got := WidthFor(max); got != want {
			t.Errorf("WidthFor(%d) = %d, want %d", max, got, want)
		}
	}
}

func TestMaxValue(t *testing.T) {
	vals := []uint32{3, 99, 0, 42, 17}
	for _, p := range []int{1, 2, 3, 10} {
		if got := MaxValue(vals, p); got != 99 {
			t.Errorf("p=%d: MaxValue = %d, want 99", p, got)
		}
	}
	if MaxValue(nil, 4) != 0 {
		t.Error("MaxValue(nil) != 0")
	}
}

func TestPackGetRoundTrip(t *testing.T) {
	vals := randVals(1000, 1<<17, 5)
	pk := PackSequential(vals)
	for i, v := range vals {
		if got := pk.Get(i); got != v {
			t.Fatalf("Get(%d) = %d, want %d", i, got, v)
		}
	}
	if !reflect.DeepEqual(pk.Unpack(), vals) {
		t.Fatal("Unpack mismatch")
	}
}

func TestParallelPackMatchesSequential(t *testing.T) {
	vals := randVals(4097, 1<<20, 6)
	want := PackSequential(vals)
	for _, p := range []int{1, 2, 3, 4, 16, 64} {
		got := Pack(vals, p)
		if !got.Equal(want) {
			t.Fatalf("p=%d: parallel pack not bit-identical to sequential", p)
		}
	}
}

func TestPackDirectMatchesPack(t *testing.T) {
	for _, n := range []int{0, 1, 2, 63, 64, 65, 1000, 4097} {
		vals := randVals(n, 1<<19, int64(n)+100)
		want := PackSequential(vals)
		for _, p := range []int{1, 2, 3, 7, 16, 64} {
			got := PackDirect(vals, p)
			if !got.Equal(want) {
				t.Fatalf("n=%d p=%d: direct pack not bit-identical", n, p)
			}
		}
	}
}

// Property: merge-based and direct packing agree for arbitrary input.
func TestQuickPackDirect(t *testing.T) {
	f := func(vals []uint32, p uint8) bool {
		return PackDirect(vals, int(p)).Equal(Pack(vals, int(p)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPackEmptyAndZeros(t *testing.T) {
	pk := Pack(nil, 4)
	if pk.Len() != 0 || pk.Width() != 1 {
		t.Fatalf("empty pack: len=%d width=%d", pk.Len(), pk.Width())
	}
	zeros := make([]uint32, 100)
	pk = Pack(zeros, 4)
	if pk.Width() != 1 {
		t.Fatalf("zeros width = %d, want 1", pk.Width())
	}
	if !reflect.DeepEqual(pk.Unpack(), zeros) {
		t.Fatal("zeros round trip failed")
	}
}

func TestSlice(t *testing.T) {
	vals := randVals(500, 1000, 7)
	pk := Pack(vals, 3)
	got := pk.Slice(nil, 100, 50)
	if !reflect.DeepEqual(got, vals[100:150]) {
		t.Fatal("Slice mismatch")
	}
	// Reuse a destination buffer.
	buf := make([]uint32, 64)
	got = pk.Slice(buf, 0, 10)
	if len(got) != 10 || !reflect.DeepEqual(got, vals[:10]) {
		t.Fatal("Slice with dst mismatch")
	}
	if got := pk.Slice(nil, 500, 0); len(got) != 0 {
		t.Fatal("empty slice at end should work")
	}
}

func TestPackedBoundsPanics(t *testing.T) {
	pk := Pack([]uint32{1, 2, 3}, 1)
	for name, fn := range map[string]func(){
		"Get negative":   func() { pk.Get(-1) },
		"Get past end":   func() { pk.Get(3) },
		"Slice past end": func() { pk.Slice(nil, 2, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: want panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestPackedMarshalRoundTrip(t *testing.T) {
	vals := randVals(321, 77777, 8)
	pk := Pack(vals, 4)
	data, err := pk.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Packed
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if !got.Equal(pk) {
		t.Fatal("marshal round trip mismatch")
	}
}

func TestPackedUnmarshalErrors(t *testing.T) {
	var pk Packed
	if err := pk.UnmarshalBinary([]byte("nope")); err == nil {
		t.Fatal("want header error")
	}
	good, _ := Pack([]uint32{1, 2, 3}, 1).MarshalBinary()
	bad := append([]byte{}, good...)
	bad[4] = 200 // implausible width
	if err := pk.UnmarshalBinary(bad); err == nil {
		t.Fatal("want width error")
	}
	if err := pk.UnmarshalBinary(good[:len(good)-1]); err == nil {
		t.Fatal("want truncation error")
	}
}

func TestVarintRoundTrip(t *testing.T) {
	vals := randVals(1000, 0xFFFFFFFF, 9)
	got, err := DecodeVarint(EncodeVarint(vals))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, vals) {
		t.Fatal("varint round trip mismatch")
	}
	if out, err := DecodeVarint(nil); err != nil || len(out) != 0 {
		t.Fatal("empty varint stream should decode to empty")
	}
	if _, err := DecodeVarint([]byte{0x80}); err == nil {
		t.Fatal("want error for dangling continuation byte")
	}
}

func TestEliasGammaRoundTrip(t *testing.T) {
	vals := append(randVals(500, 100000, 10), 0, 1, 0xFFFFFFFE)
	a := EncodeEliasGamma(vals)
	got, err := DecodeEliasGamma(a, len(vals))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, vals) {
		t.Fatal("gamma round trip mismatch")
	}
	if _, err := DecodeEliasGamma(EncodeEliasGamma([]uint32{5}), 2); err == nil {
		t.Fatal("want truncation error")
	}
}

func TestDeltaTransformRoundTrip(t *testing.T) {
	vals := []uint32{3, 3, 7, 10, 100}
	orig := append([]uint32(nil), vals...)
	if err := DeltaTransform(vals); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(vals, []uint32{3, 0, 4, 3, 90}) {
		t.Fatalf("deltas = %v", vals)
	}
	DeltaRestore(vals)
	if !reflect.DeepEqual(vals, orig) {
		t.Fatal("delta restore mismatch")
	}
	if err := DeltaTransform([]uint32{5, 4}); err == nil {
		t.Fatal("want error for decreasing input")
	}
}

// Property: pack/unpack identity for arbitrary values and processor counts.
func TestQuickPackIdentity(t *testing.T) {
	f := func(vals []uint32, p uint8) bool {
		pk := Pack(vals, int(p))
		got := pk.Unpack()
		if len(vals) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(got, vals)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: all three codecs decode to the original values.
func TestQuickCodecsAgree(t *testing.T) {
	f := func(vals []uint32) bool {
		v1, err1 := DecodeVarint(EncodeVarint(vals))
		v2, err2 := DecodeEliasGamma(EncodeEliasGamma(vals), len(vals))
		if err1 != nil || err2 != nil {
			return false
		}
		if len(vals) == 0 {
			return len(v1) == 0 && len(v2) == 0
		}
		return reflect.DeepEqual(v1, vals) && reflect.DeepEqual(v2, vals)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPackAblation(b *testing.B) {
	vals := randVals(1<<18, 1<<20, 11)
	b.Run("fixedwidth", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Pack(vals, 1)
		}
	})
	b.Run("varint", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			EncodeVarint(vals)
		}
	})
	b.Run("gamma", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			EncodeEliasGamma(vals)
		}
	})
}

func BenchmarkSliceDecode(b *testing.B) {
	vals := randVals(1<<16, 1<<20, 77)
	pk := Pack(vals, 1)
	dst := make([]uint32, len(vals))
	b.Run("bulk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pk.Slice(dst, 0, len(vals))
		}
	})
	b.Run("get-loop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j := range dst {
				dst[j] = pk.Get(j)
			}
		}
	})
}

// BenchmarkPackMergeVsDirect ablates Algorithm 4's serial merge against
// the offset-precomputed direct write (DESIGN.md §5).
func BenchmarkPackMergeVsDirect(b *testing.B) {
	vals := randVals(1<<20, 1<<20, 78)
	for _, p := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("merge/p=%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Pack(vals, p)
			}
		})
		b.Run(fmt.Sprintf("direct/p=%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				PackDirect(vals, p)
			}
		})
	}
}

// TestLowerBoundDifferential checks the packed lower-bound searches against
// sort.Search on the decoded values, including empty ranges, heads, tails,
// and out-of-range probes, for a spread of widths.
func TestLowerBoundDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, width := range []int{1, 2, 3, 7, 8, 13, 16, 24, 31, 32} {
		limit := uint64(1) << width
		vals := make([]uint32, 700)
		for i := range vals {
			vals[i] = uint32(rng.Uint64() % limit)
		}
		vals[rng.Intn(len(vals))] = uint32(limit - 1) // pin the width
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		pk := Pack(vals, 2)
		if pk.Width() != width {
			t.Fatalf("width %d: packed to %d", width, pk.Width())
		}
		bounds := [][2]int{{0, len(vals)}, {0, 0}, {len(vals), len(vals)}, {10, 400}, {399, 400}}
		for _, bd := range bounds {
			lo, hi := bd[0], bd[1]
			var probes []uint32
			for i := 0; i < 32; i++ {
				probes = append(probes, uint32(rng.Uint64()%limit))
			}
			if hi > lo {
				probes = append(probes, vals[lo], vals[hi-1])
			}
			probes = append(probes, 0, uint32(limit-1))
			for _, v := range probes {
				want := lo + sort.Search(hi-lo, func(i int) bool { return vals[lo+i] >= v })
				if got := pk.LowerBound(lo, hi, v); got != want {
					t.Fatalf("width %d: LowerBound([%d,%d), %d) = %d, want %d", width, lo, hi, v, got, want)
				}
				if got := pk.GallopLowerBound(lo, hi, v); got != want {
					t.Fatalf("width %d: GallopLowerBound([%d,%d), %d) = %d, want %d", width, lo, hi, v, got, want)
				}
			}
		}
	}
}
