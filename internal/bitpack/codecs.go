package bitpack

import (
	"encoding/binary"
	"fmt"

	"csrgraph/internal/bitarray"
)

// Ablation codecs: alternatives to fixed-width packing measured in
// BenchmarkPackAblation. Neither supports O(1) random access, which is why
// the paper's querying algorithms use the fixed-width form.

// EncodeVarint encodes vals as unsigned LEB128 (the encoding/binary uvarint
// format), one varint per value.
func EncodeVarint(vals []uint32) []byte {
	out := make([]byte, 0, len(vals))
	var tmp [binary.MaxVarintLen64]byte
	for _, v := range vals {
		n := binary.PutUvarint(tmp[:], uint64(v))
		out = append(out, tmp[:n]...)
	}
	return out
}

// DecodeVarint decodes a stream produced by EncodeVarint.
func DecodeVarint(data []byte) ([]uint32, error) {
	var out []uint32
	for len(data) > 0 {
		v, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, fmt.Errorf("bitpack: malformed varint at tail of length %d", len(data))
		}
		if v > 0xFFFFFFFF {
			return nil, fmt.Errorf("bitpack: varint value %d overflows uint32", v)
		}
		out = append(out, uint32(v))
		data = data[n:]
	}
	return out, nil
}

// EncodeEliasGamma encodes vals with the Elias gamma code. Gamma cannot
// represent zero, so values are shifted by one on the wire (v+1).
func EncodeEliasGamma(vals []uint32) *bitarray.Array {
	a := bitarray.New(len(vals) * 8)
	for _, v := range vals {
		appendGamma(a, uint64(v)+1)
	}
	return a
}

func appendGamma(a *bitarray.Array, x uint64) {
	// gamma(x) = (len(x)-1) zeros, then x's len(x) bits.
	n := 0
	for t := x; t > 1; t >>= 1 {
		n++
	}
	a.AppendBits(0, n)
	a.AppendBits(x, n+1)
}

// DecodeEliasGamma decodes count values from a gamma-coded array.
func DecodeEliasGamma(a *bitarray.Array, count int) ([]uint32, error) {
	out := make([]uint32, 0, count)
	r := bitarray.NewReader(a, 0)
	for i := 0; i < count; i++ {
		n := 0
		for {
			if r.Remaining() == 0 {
				return nil, fmt.Errorf("bitpack: gamma stream truncated at value %d", i)
			}
			if r.ReadBit() {
				break
			}
			n++
		}
		if n > 63 || r.Remaining() < n {
			return nil, fmt.Errorf("bitpack: gamma stream corrupt at value %d", i)
		}
		x := uint64(1)
		if n > 0 {
			x = 1<<n | r.ReadUint(n)
		}
		if x-1 > 0xFFFFFFFF {
			return nil, fmt.Errorf("bitpack: gamma value %d overflows uint32", x-1)
		}
		out = append(out, uint32(x-1))
	}
	return out, nil
}

// DeltaTransform replaces each element of a non-decreasing slice with its
// gap from the predecessor (first element kept), in place. Useful before
// gamma or varint coding of sorted neighbor lists.
func DeltaTransform(vals []uint32) error {
	prev := uint32(0)
	for i, v := range vals {
		if i > 0 && v < prev {
			return fmt.Errorf("bitpack: delta transform needs non-decreasing input, broken at %d", i)
		}
		vals[i] = v - prev
		prev = v
	}
	return nil
}

// DeltaRestore inverts DeltaTransform in place.
func DeltaRestore(vals []uint32) {
	var run uint32
	for i, d := range vals {
		run += d
		vals[i] = run
	}
}
