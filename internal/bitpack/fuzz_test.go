package bitpack

import (
	"reflect"
	"testing"

	"csrgraph/internal/bitarray"
)

// Decoders over untrusted bytes must error, never panic.

func FuzzDecodeVarint(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeVarint([]uint32{0, 1, 300, 0xFFFFFFFF}))
	f.Add([]byte{0x80})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		vals, err := DecodeVarint(data)
		if err != nil {
			return
		}
		// Accepted input must re-encode to a decodable stream with the same
		// values (canonical encodings round-trip exactly; non-canonical ones
		// still produce the same value list).
		back, rerr := DecodeVarint(EncodeVarint(vals))
		if rerr != nil {
			t.Fatal(rerr)
		}
		if len(vals) != 0 && !reflect.DeepEqual(vals, back) {
			t.Fatalf("values changed: %v -> %v", vals, back)
		}
	})
}

func FuzzPackedUnmarshal(f *testing.F) {
	good, _ := Pack([]uint32{1, 5, 9}, 2).MarshalBinary()
	f.Add(good)
	f.Add([]byte("BPK1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var pk Packed
		if err := pk.UnmarshalBinary(data); err != nil {
			return
		}
		// Accepted payload must be internally consistent.
		if pk.Len() > 0 {
			_ = pk.Get(0)
			_ = pk.Get(pk.Len() - 1)
		}
		out, err := pk.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var back Packed
		if err := back.UnmarshalBinary(out); err != nil || !back.Equal(&pk) {
			t.Fatalf("re-marshal round trip failed: %v", err)
		}
	})
}

func FuzzDecodeEliasGamma(f *testing.F) {
	enc := EncodeEliasGamma([]uint32{0, 7, 1 << 20})
	payload, _ := enc.MarshalBinary()
	f.Add(payload, 3)
	f.Add([]byte{}, 1)
	f.Fuzz(func(t *testing.T, data []byte, count int) {
		if count < 0 || count > 1<<16 {
			return
		}
		var a bitarray.Array
		if err := a.UnmarshalBinary(data); err != nil {
			return
		}
		vals, err := DecodeEliasGamma(&a, count)
		if err != nil {
			return
		}
		// Accepted values re-encode and decode identically.
		back, rerr := DecodeEliasGamma(EncodeEliasGamma(vals), len(vals))
		if rerr != nil {
			t.Fatal(rerr)
		}
		if len(vals) != 0 && !reflect.DeepEqual(vals, back) {
			t.Fatal("gamma values changed on re-encode")
		}
	})
}
