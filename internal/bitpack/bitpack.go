// Package bitpack implements the integer bit-packing compression the paper
// applies to both CSR arrays (Section III-A3, Algorithm 4, citing the
// authors' earlier ALLDATA'21 scheme): every value in an array is stored at
// the same fixed bit width w = ceil(log2(max+1)), giving random access to
// element i at bit offset i*w — the property the parallel querying
// algorithms of Section V rely on (their `numBits` parameter is this width).
//
// Algorithm 4 parallelizes the encoding: the value array is split into p
// chunks, each processor packs its chunk into a private bit array, and the
// per-chunk bit arrays are concatenated. Because the width is global, the
// concatenation is bit-identical to a sequential pack.
//
// The package also provides byte-aligned varint and Elias-gamma codecs used
// as ablation baselines (they compress skewed data better but forfeit O(1)
// random access).
package bitpack

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
	"sync/atomic"

	"csrgraph/internal/bitarray"
	"csrgraph/internal/parallel"
)

// WidthFor returns the number of bits needed to store max: at least 1, so
// that an all-zero array still advances positions.
func WidthFor(max uint32) int {
	if max == 0 {
		return 1
	}
	return bits.Len32(max)
}

// MaxValue returns the largest element of vals computed with p processors,
// or 0 for an empty slice.
func MaxValue(vals []uint32, p int) uint32 {
	chunks := parallel.Chunks(len(vals), p)
	if len(chunks) == 0 {
		return 0
	}
	maxes := make([]uint32, len(chunks))
	parallel.For(len(vals), len(chunks), func(c int, r parallel.Range) {
		var m uint32
		for _, v := range vals[r.Start:r.End] {
			if v > m {
				m = v
			}
		}
		maxes[c] = m
	})
	var m uint32
	for _, v := range maxes {
		if v > m {
			m = v
		}
	}
	return m
}

// Packed is a fixed-width bit-packed array of uint32 values.
type Packed struct {
	width int
	n     int
	bits  *bitarray.Array
	// aligned records 64%width == 0: element i at bit i*width can never
	// straddle a word boundary, so Get may use the single-word fast path.
	aligned bool
}

// newPacked wraps a finished bit array, deriving the alignment flag; every
// constructor and the deserializer funnel through it.
func newPacked(width, n int, bits *bitarray.Array) *Packed {
	return &Packed{width: width, n: n, bits: bits, aligned: 64%width == 0}
}

// View wraps an externally owned word slice — a mapped container section —
// as a Packed array of n width-bit values without copying. The words are
// untrusted file content, so every shape violation (width outside [1,32],
// negative or oversized n, wrong word count, dirty tail bits) is an error,
// not a panic. The returned Packed aliases words; see bitarray.View for the
// lifetime and read-only rules.
func View(width, n int, words []uint64) (*Packed, error) {
	const maxLen = 1 << 56 // matches UnmarshalBinary: keeps width*n overflow-free
	if width < 1 || width > 32 || n < 0 || n > maxLen {
		return nil, fmt.Errorf("bitpack: implausible view width=%d n=%d", width, n)
	}
	bits, err := bitarray.View(words, width*n)
	if err != nil {
		return nil, err
	}
	return newPacked(width, n, bits), nil
}

// Pack encodes vals using p processors per Algorithm 4: compute the global
// width, pack chunks independently, and merge the per-chunk bit arrays.
func Pack(vals []uint32, p int) *Packed {
	width := WidthFor(MaxValue(vals, p))
	chunks := parallel.Chunks(len(vals), p)
	if len(chunks) <= 1 {
		return packWithWidth(vals, width)
	}
	parts := make([]*bitarray.Array, len(chunks))
	parallel.For(len(vals), len(chunks), func(c int, r parallel.Range) {
		a := bitarray.New(r.Len() * width)
		for _, v := range vals[r.Start:r.End] {
			a.AppendBits(uint64(v), width)
		}
		parts[c] = a
	})
	// Merge all per-chunk bit arrays from their "global location".
	merged := bitarray.New(len(vals) * width)
	for _, part := range parts {
		merged.AppendArray(part)
	}
	return newPacked(width, len(vals), merged)
}

// PackSequential encodes vals on one processor; the reference for Pack.
func PackSequential(vals []uint32) *Packed {
	return packWithWidth(vals, WidthFor(MaxValue(vals, 1)))
}

// PackDirect is the merge-free alternative to Pack (ablation of
// Algorithm 4's "merge all bitArrays" step): because the width is global,
// element i's bit offset i*width is known up front, so every processor
// writes its chunk straight into the shared output word array. Interior
// words of a chunk are touched by that chunk alone; the single word
// straddling each chunk boundary is shared by two processors, which
// contribute disjoint bits — atomic OR makes those concurrent writes safe
// and order-independent, so the result is bit-identical to Pack.
func PackDirect(vals []uint32, p int) *Packed {
	width := WidthFor(MaxValue(vals, p))
	chunks := parallel.Chunks(len(vals), p)
	if len(chunks) <= 1 {
		return packWithWidth(vals, width)
	}
	totalBits := len(vals) * width
	words := make([]atomic.Uint64, (totalBits+63)/64)
	parallel.For(len(vals), len(chunks), func(c int, r parallel.Range) {
		// Words wholly inside this chunk's bit range see only this
		// goroutine; the first and last may be shared with neighbours.
		firstWord := r.Start * width / 64
		lastWord := (r.End*width - 1) / 64
		or := func(w int, bits uint64) {
			if w == firstWord || w == lastWord {
				words[w].Or(bits)
			} else {
				// Interior: plain read-modify-write through the atomic's
				// value is unnecessary; Store suffices because no other
				// goroutine touches this word during the parallel phase.
				words[w].Store(words[w].Load() | bits)
			}
		}
		for i := r.Start; i < r.End; i++ {
			v := uint64(vals[i])
			if width < 64 {
				v &= (1 << width) - 1
			}
			pos := i * width
			w, off := pos/64, pos%64
			room := 64 - off
			if width <= room {
				or(w, v<<(room-width))
			} else {
				rest := width - room
				or(w, v>>rest)
				or(w+1, v<<(64-rest))
			}
		}
	})
	plain := make([]uint64, len(words))
	for i := range words {
		plain[i] = words[i].Load()
	}
	a := bitarray.FromWords(plain, totalBits)
	return newPacked(width, len(vals), a)
}

func packWithWidth(vals []uint32, width int) *Packed {
	a := bitarray.New(len(vals) * width)
	for _, v := range vals {
		a.AppendBits(uint64(v), width)
	}
	return newPacked(width, len(vals), a)
}

// Len returns the number of packed values.
func (pk *Packed) Len() int { return pk.n }

// Width returns the per-value bit width (the paper's numBits).
func (pk *Packed) Width() int { return pk.width }

// Bits exposes the underlying bit array (read-only by convention).
func (pk *Packed) Bits() *bitarray.Array { return pk.bits }

// SizeBytes returns the payload footprint in bytes.
func (pk *Packed) SizeBytes() int64 { return int64(pk.bits.SizeBytes()) }

// Get returns element i. When the width divides 64 the value cannot
// straddle a word boundary and the read is a single load-shift-mask
// (bitarray.UintAligned) instead of Uint's two-word branch.
//
//csr:hotpath
func (pk *Packed) Get(i int) uint32 {
	if i < 0 || i >= pk.n {
		panic(fmt.Sprintf("bitpack: index %d out of range [0,%d)", i, pk.n))
	}
	return pk.get(i)
}

// get is Get without the bounds check, for the search loops below whose
// probe indices are validated once up front.
//
//csr:hotpath
func (pk *Packed) get(i int) uint32 {
	if pk.aligned {
		return uint32(pk.bits.UintAligned(i*pk.width, pk.width))
	}
	return uint32(pk.bits.Uint(i*pk.width, pk.width))
}

//csr:hotpath
func (pk *Packed) checkRange(lo, hi int) {
	if lo < 0 || hi > pk.n || lo > hi {
		panic(fmt.Sprintf("bitpack: range [%d,%d) out of range [0,%d)", lo, hi, pk.n))
	}
}

// LowerBound returns the smallest index i in [lo, hi) with Get(i) >= v, or
// hi when every element is below v. The elements in [lo, hi) must be
// sorted ascending. Each probe is a single packed random access, so a
// sorted run — a CSR neighbor row — is searched without decoding it: the
// zero-decode primitive behind csr.Packed.SearchRow.
//
//csr:hotpath
func (pk *Packed) LowerBound(lo, hi int, v uint32) int {
	pk.checkRange(lo, hi)
	return pk.lowerBound(lo, hi, v)
}

//csr:hotpath
func (pk *Packed) lowerBound(lo, hi int, v uint32) int {
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if pk.get(mid) < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// GallopLowerBound is LowerBound with a galloping (exponential) first
// phase: probe lo+1, lo+2, lo+4, ... until the value meets v, then binary
// search the bracketed run. Cost is O(log(i-lo)) in the answer's offset
// rather than O(log(hi-lo)), which wins on hub rows when queries skew
// toward small neighbor ids (degree-ordered graphs give hubs small ids),
// and keeps early probes within a few cache lines of the row start
// instead of striding across the whole packed row.
//
//csr:hotpath
func (pk *Packed) GallopLowerBound(lo, hi int, v uint32) int {
	pk.checkRange(lo, hi)
	if lo == hi || pk.get(lo) >= v {
		return lo
	}
	// Invariant: get(lo+prev) < v.
	prev, step := 0, 1
	for lo+step < hi && pk.get(lo+step) < v {
		prev = step
		step <<= 1
	}
	return pk.lowerBound(lo+prev+1, min(hi, lo+step), v)
}

// Slice decodes count elements starting at element start into dst, which is
// grown as needed, and returns it. This is the GetRowFromCSR primitive of
// ref [28]: a CSR row is exactly a contiguous run of packed values.
func (pk *Packed) Slice(dst []uint32, start, count int) []uint32 {
	if start < 0 || count < 0 || start+count > pk.n {
		panic(fmt.Sprintf("bitpack: slice [%d,%d) out of range [0,%d)", start, start+count, pk.n))
	}
	if cap(dst) < count {
		dst = make([]uint32, count)
	}
	dst = dst[:count]
	pk.bits.UnpackUints(dst, start*pk.width, pk.width, count)
	return dst
}

// Unpack decodes the whole array.
func (pk *Packed) Unpack() []uint32 {
	return pk.Slice(nil, 0, pk.n)
}

// Equal reports whether two packed arrays hold the same values at the same
// width.
func (pk *Packed) Equal(o *Packed) bool {
	return pk.width == o.width && pk.n == o.n && pk.bits.Equal(o.bits)
}

const packedMagic = "BPK1"

// MarshalBinary encodes the packed array with a self-describing header.
func (pk *Packed) MarshalBinary() ([]byte, error) {
	payload, err := pk.bits.MarshalBinary()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 0, 4+16+len(payload))
	buf = append(buf, packedMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(pk.width))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(pk.n))
	return append(buf, payload...), nil
}

// UnmarshalBinary decodes data written by MarshalBinary.
func (pk *Packed) UnmarshalBinary(data []byte) error {
	if len(data) < 20 || string(data[:4]) != packedMagic {
		return errors.New("bitpack: bad header")
	}
	width := int(binary.LittleEndian.Uint64(data[4:12]))
	n := int(binary.LittleEndian.Uint64(data[12:20]))
	// Values are uint32, so no valid encoder emits a width above 32; the
	// bound on n both rejects nonsense and makes width*n below safe from
	// overflow (32 * 2^56 < 2^63).
	const maxLen = 1 << 56
	if width < 1 || width > 32 || n < 0 || n > maxLen {
		return fmt.Errorf("bitpack: implausible header width=%d n=%d", width, n)
	}
	var a bitarray.Array
	if err := a.UnmarshalBinary(data[20:]); err != nil {
		return err
	}
	if a.Len() != width*n {
		return fmt.Errorf("bitpack: payload %d bits, want %d", a.Len(), width*n)
	}
	*pk = *newPacked(width, n, &a)
	return nil
}
