package order

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"csrgraph/internal/csr"
	"csrgraph/internal/edgelist"
)

func testGraph(n, m int, seed int64) *csr.Matrix {
	rng := rand.New(rand.NewSource(seed))
	l := make(edgelist.List, m)
	for i := range l {
		l[i] = edgelist.Edge{U: rng.Uint32() % uint32(n), V: rng.Uint32() % uint32(n)}
	}
	l.SortByUV(1)
	l = l.Dedup()
	return csr.Build(l, n, 1)
}

func TestIdentity(t *testing.T) {
	perm := Identity(5)
	if err := perm.valid(5); err != nil {
		t.Fatal(err)
	}
	m := testGraph(5, 10, 1)
	out, err := Apply(m, perm, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(m) {
		t.Fatal("identity permutation changed the graph")
	}
}

func TestByDegreeOrdersHubsFirst(t *testing.T) {
	m := testGraph(50, 600, 2)
	perm := ByDegree(m, 2)
	if err := perm.valid(50); err != nil {
		t.Fatal(err)
	}
	out, err := Apply(m, perm, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	// Degrees must be non-increasing in the new labeling.
	for u := 1; u < 50; u++ {
		if out.Degree(uint32(u)) > out.Degree(uint32(u-1)) {
			t.Fatalf("degree order violated at %d", u)
		}
	}
}

func TestByBFSGroupsLevels(t *testing.T) {
	// Path 0-1-2-3 plus isolated node 4: BFS order from 0 keeps the path
	// order and pushes the unreached node last.
	l := edgelist.List{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}}
	m := csr.Build(l, 5, 1)
	perm := ByBFS(m, 0, 2)
	if !reflect.DeepEqual(perm.OldID, []uint32{0, 1, 2, 3, 4}) {
		t.Fatalf("OldID = %v", perm.OldID)
	}
}

// applyReference relabels via the edge list for validation.
func applyReference(m *csr.Matrix, perm *Permutation) *csr.Matrix {
	var l edgelist.List
	for _, e := range m.Edges() {
		l = append(l, edgelist.Edge{U: perm.NewID[e.U], V: perm.NewID[e.V]})
	}
	l.SortByUV(1)
	return csr.Build(l, m.NumNodes(), 1)
}

func TestApplyMatchesReference(t *testing.T) {
	m := testGraph(80, 900, 3)
	for _, perm := range []*Permutation{ByDegree(m, 2), ByBFS(m, 0, 2)} {
		want := applyReference(m, perm)
		for _, p := range []int{1, 4} {
			got, err := Apply(m, perm, p)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want) {
				t.Fatalf("p=%d: Apply diverges from edge-list relabeling", p)
			}
		}
	}
}

func TestApplyRejectsBadPermutation(t *testing.T) {
	m := testGraph(5, 8, 4)
	bad := &Permutation{NewID: []uint32{0, 0, 1, 2, 3}, OldID: []uint32{0, 2, 3, 4, 4}}
	if _, err := Apply(m, bad, 2); err == nil {
		t.Fatal("want bijection error")
	}
	short := &Permutation{NewID: []uint32{0}, OldID: []uint32{0}}
	if _, err := Apply(m, short, 2); err == nil {
		t.Fatal("want size error")
	}
}

func TestCompareOrderings(t *testing.T) {
	m := testGraph(200, 3000, 5)
	results, err := CompareOrderings(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("%d orderings", len(results))
	}
	for _, r := range results {
		if r.FixedBytes <= 0 || r.DeltaBytes <= 0 {
			t.Fatalf("%s: non-positive sizes %+v", r.Ordering, r)
		}
	}
	// Fixed-width size is ordering-invariant (same widths, same counts).
	if results[0].FixedBytes != results[1].FixedBytes {
		t.Fatalf("fixed-width size changed under reordering: %d vs %d",
			results[0].FixedBytes, results[1].FixedBytes)
	}
}

func TestBFSOrderImprovesDeltaOnLocalGraph(t *testing.T) {
	// A graph whose natural labels are scrambled: a ring with shuffled
	// ids. BFS order restores locality, shrinking delta-gamma payloads.
	const n = 512
	rng := rand.New(rand.NewSource(6))
	shuffle := rng.Perm(n)
	var l edgelist.List
	for i := 0; i < n; i++ {
		u, v := uint32(shuffle[i]), uint32(shuffle[(i+1)%n])
		l = append(l, edgelist.Edge{U: u, V: v}, edgelist.Edge{U: v, V: u})
	}
	l.SortByUV(1)
	l = l.Dedup()
	m := csr.Build(l, n, 1)

	identity := csr.PackDelta(m, 2).SizeBytes()
	perm := ByBFS(m, 0, 2)
	relabeled, err := Apply(m, perm, 2)
	if err != nil {
		t.Fatal(err)
	}
	bfsSize := csr.PackDelta(relabeled, 2).SizeBytes()
	if bfsSize >= identity {
		t.Fatalf("BFS order should shrink delta coding on a scrambled ring: %d vs %d", bfsSize, identity)
	}
}

// Property: Apply preserves the multiset of degrees and the edge count.
func TestQuickApplyPreservesStructure(t *testing.T) {
	f := func(pairs []uint16, p uint8) bool {
		const n = 24
		l := make(edgelist.List, 0, len(pairs)/2)
		for i := 0; i+1 < len(pairs); i += 2 {
			l = append(l, edgelist.Edge{U: uint32(pairs[i]) % n, V: uint32(pairs[i+1]) % n})
		}
		l.SortByUV(1)
		l = l.Dedup()
		m := csr.Build(l, n, 1)
		perm := ByDegree(m, int(p))
		out, err := Apply(m, perm, int(p))
		if err != nil || out.Validate() != nil || out.NumEdges() != m.NumEdges() {
			return false
		}
		degOld := make([]int, 0, n)
		degNew := make([]int, 0, n)
		for u := 0; u < n; u++ {
			degOld = append(degOld, m.Degree(uint32(u)))
			degNew = append(degNew, out.Degree(uint32(u)))
		}
		countOf := func(xs []int) map[int]int {
			c := map[int]int{}
			for _, x := range xs {
				c[x]++
			}
			return c
		}
		return reflect.DeepEqual(countOf(degOld), countOf(degNew))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
