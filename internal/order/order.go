// Package order relabels graph nodes to improve compression — the lever
// the web-graph compression literature the paper builds on (Boldi-Vigna
// [2], Chierichetti et al. [6]) identifies as decisive: gap-coded and
// bit-packed representations shrink when neighbors get nearby ids.
//
// Two orderings are provided: degree-descending (hubs first, shrinking
// the ids that appear most often in neighbor lists) and BFS order
// (locality: neighbors discovered together get adjacent ids).
package order

import (
	"fmt"
	"sort"

	"csrgraph/internal/algo"
	"csrgraph/internal/csr"
	"csrgraph/internal/edgelist"
	"csrgraph/internal/parallel"
	"csrgraph/internal/prefixsum"
)

// Permutation maps old node ids to new ids: NewID[old] == new.
type Permutation struct {
	NewID []uint32
	OldID []uint32
}

// valid checks the permutation is a bijection over n ids.
func (p *Permutation) valid(n int) error {
	if len(p.NewID) != n || len(p.OldID) != n {
		return fmt.Errorf("order: permutation size %d/%d, want %d", len(p.NewID), len(p.OldID), n)
	}
	for old, nw := range p.NewID {
		if int(nw) >= n || p.OldID[nw] != uint32(old) {
			return fmt.Errorf("order: permutation not a bijection at %d", old)
		}
	}
	return nil
}

// ByDegree returns the permutation that sorts nodes by descending degree
// (ties by old id, so the result is deterministic).
func ByDegree(m *csr.Matrix, p int) *Permutation {
	n := m.NumNodes()
	old := make([]uint32, n)
	for i := range old {
		old[i] = uint32(i)
	}
	sort.SliceStable(old, func(a, b int) bool {
		da, db := m.Degree(old[a]), m.Degree(old[b])
		if da != db {
			return da > db
		}
		return old[a] < old[b]
	})
	return fromOldOrder(old)
}

// ByBFS returns the permutation that labels nodes in BFS discovery order
// from src; unreached nodes keep their relative order after all reached
// ones.
func ByBFS(m *csr.Matrix, src edgelist.NodeID, p int) *Permutation {
	n := m.NumNodes()
	dist := algo.BFS(m, src, p)
	old := make([]uint32, n)
	for i := range old {
		old[i] = uint32(i)
	}
	sort.SliceStable(old, func(a, b int) bool {
		da, db := dist[old[a]], dist[old[b]]
		// Reached before unreached; then by level; then by old id (which,
		// within a level, approximates discovery order from sorted rows).
		ra, rb := da != algo.Unreached, db != algo.Unreached
		if ra != rb {
			return ra
		}
		if ra && da != db {
			return da < db
		}
		return old[a] < old[b]
	})
	return fromOldOrder(old)
}

// Identity returns the no-op permutation.
func Identity(n int) *Permutation {
	ids := make([]uint32, n)
	for i := range ids {
		ids[i] = uint32(i)
	}
	return &Permutation{NewID: append([]uint32{}, ids...), OldID: ids}
}

func fromOldOrder(old []uint32) *Permutation {
	newID := make([]uint32, len(old))
	for nw, o := range old {
		newID[o] = uint32(nw)
	}
	return &Permutation{NewID: newID, OldID: old}
}

// Apply relabels a CSR under the permutation with p processors: row new-u
// is old row OldID[new-u] with every neighbor mapped through NewID and
// re-sorted; offsets are rebuilt with the parallel prefix sum.
func Apply(m *csr.Matrix, perm *Permutation, p int) (*csr.Matrix, error) {
	n := m.NumNodes()
	if err := perm.valid(n); err != nil {
		return nil, err
	}
	deg := make([]uint32, n)
	parallel.For(n, p, func(_ int, r parallel.Range) {
		for u := r.Start; u < r.End; u++ {
			deg[u] = uint32(m.Degree(perm.OldID[u]))
		}
	})
	off := prefixsum.Offsets(deg, p)
	cols := make([]uint32, off[n])
	parallel.For(n, p, func(_ int, r parallel.Range) {
		for u := r.Start; u < r.End; u++ {
			row := cols[off[u]:off[u+1]]
			for i, w := range m.Neighbors(perm.OldID[u]) {
				row[i] = perm.NewID[w]
			}
			sort.Slice(row, func(a, b int) bool { return row[a] < row[b] })
		}
	})
	return &csr.Matrix{RowOffsets: off, Cols: cols}, nil
}

// SizeComparison packs a matrix under each ordering and reports the
// bit-packed and delta-gamma sizes, for the compression ablation.
type SizeComparison struct {
	Ordering   string
	FixedBytes int64
	DeltaBytes int64
}

// CompareOrderings evaluates identity, degree and BFS orderings on m.
func CompareOrderings(m *csr.Matrix, p int) ([]SizeComparison, error) {
	orderings := []struct {
		name string
		perm *Permutation
	}{
		{"identity", Identity(m.NumNodes())},
		{"degree", ByDegree(m, p)},
		{"bfs", ByBFS(m, 0, p)},
	}
	out := make([]SizeComparison, 0, len(orderings))
	for _, o := range orderings {
		relabeled, err := Apply(m, o.perm, p)
		if err != nil {
			return nil, err
		}
		out = append(out, SizeComparison{
			Ordering:   o.name,
			FixedBytes: csr.PackMatrix(relabeled, p).SizeBytes(),
			DeltaBytes: csr.PackDelta(relabeled, p).SizeBytes(),
		})
	}
	return out, nil
}
