package csr

import (
	"math/rand"
	"sort"
	"testing"

	"csrgraph/internal/edgelist"
)

// searchTestMatrix builds a Matrix whose Cols values exercise exactly the
// given packed bit width: rows are sorted random values below 2^width with
// the maximum forced to have bit width-1 set, so PackMatrix chooses that
// width for jA. Node-space validity of the neighbor ids is irrelevant to
// the search paths under test.
func searchTestMatrix(width int, rows, maxDeg int, rng *rand.Rand) *Matrix {
	limit := uint64(1) << width
	off := make([]uint32, 1, rows+1)
	var cols []uint32
	for r := 0; r < rows; r++ {
		d := rng.Intn(maxDeg + 1)
		row := make([]uint32, 0, d+1)
		for i := 0; i < d; i++ {
			row = append(row, uint32(rng.Uint64()%limit))
		}
		if r == rows-1 {
			// Force the packed width: the last row carries the maximum
			// representable value, so PackMatrix picks exactly `width`.
			row = append(row, uint32(limit-1))
		}
		sort.Slice(row, func(i, j int) bool { return row[i] < row[j] })
		row = dedupSorted(row)
		cols = append(cols, row...)
		off = append(off, uint32(len(cols)))
	}
	return &Matrix{RowOffsets: off, Cols: cols}
}

// dedupSorted compacts a sorted row to strictly ascending, the CSR row
// invariant.
func dedupSorted(row []uint32) []uint32 {
	out := row[:0]
	for i, v := range row {
		if i == 0 || v != row[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// TestSearchRowDifferentialAcrossWidths quick-checks the zero-decode
// packed search against sort.Search over the decoded row for every packed
// width 1..32, probing present values, absent values, values below the
// first and above the last neighbor, and empty rows.
func TestSearchRowDifferentialAcrossWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for width := 1; width <= 32; width++ {
		// A mix of short rows and one hub row past the gallop threshold.
		m := searchTestMatrix(width, 8, 24, rng)
		hub := searchTestMatrix(width, 1, 4*gallopMinDegree, rng)
		for _, mat := range []*Matrix{m, hub} {
			pk := PackMatrix(mat, 2)
			if got := pk.NumBits(); got != width && mat.NumEdges() > 0 {
				t.Fatalf("width %d: packed to %d bits", width, got)
			}
			for u := 0; u < mat.NumNodes(); u++ {
				row := mat.Neighbors(uint32(u))
				var probes []uint32
				probes = append(probes, row...)
				for i := 0; i < 16; i++ {
					probes = append(probes, uint32(rng.Uint64()%(1<<width)))
				}
				if len(row) > 0 {
					if row[0] > 0 {
						probes = append(probes, 0, row[0]-1)
					}
					probes = append(probes, row[len(row)-1])
					if row[len(row)-1] < ^uint32(0) {
						probes = append(probes, row[len(row)-1]+1)
					}
				} else {
					probes = append(probes, 0, 1)
				}
				for _, v := range probes {
					i := sort.Search(len(row), func(i int) bool { return row[i] >= v })
					want := i < len(row) && row[i] == v
					if got := pk.SearchRow(uint32(u), v); got != want {
						t.Fatalf("width %d: packed SearchRow(%d, %d) = %v, want %v (row %v)",
							width, u, v, got, want, row)
					}
					if got := mat.SearchRow(uint32(u), v); got != want {
						t.Fatalf("width %d: matrix SearchRow(%d, %d) = %v, want %v", width, u, v, got, want)
					}
					if got := pk.HasEdgeBinary(uint32(u), v); got != want {
						t.Fatalf("width %d: HasEdgeBinary(%d, %d) = %v, want %v", width, u, v, got, want)
					}
				}
			}
		}
	}
}

// TestSearchRangeSubranges checks the Algorithm 8 split unit: searching any
// subrange of a row agrees with membership of that subrange, for both the
// packed and plain forms.
func TestSearchRangeSubranges(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := searchTestMatrix(20, 4, 3*gallopMinDegree, rng)
	pk := PackMatrix(m, 1)
	for u := 0; u < m.NumNodes(); u++ {
		start, end := m.RowBounds(uint32(u))
		if s2, e2 := pk.RowBounds(uint32(u)); s2 != start || e2 != end {
			t.Fatalf("RowBounds disagree: matrix [%d,%d) packed [%d,%d)", start, end, s2, e2)
		}
		for trial := 0; trial < 50; trial++ {
			lo := start
			hi := end
			if end > start {
				lo = start + rng.Intn(end-start+1)
				hi = lo + rng.Intn(end-lo+1)
			}
			var v uint32
			if hi > lo && trial%2 == 0 {
				v = m.Cols[lo+rng.Intn(hi-lo)] // present
			} else {
				v = uint32(rng.Uint64() % (1 << 20))
			}
			want := false
			for _, w := range m.Cols[lo:hi] {
				if w == v {
					want = true
				}
			}
			if got := pk.SearchRange(lo, hi, v); got != want {
				t.Fatalf("packed SearchRange([%d,%d), %d) = %v, want %v", lo, hi, v, got, want)
			}
			if got := m.SearchRange(lo, hi, v); got != want {
				t.Fatalf("matrix SearchRange([%d,%d), %d) = %v, want %v", lo, hi, v, got, want)
			}
		}
	}
}

// TestDeltaSearchRow pins the delta form's early-exit search to HasEdge
// semantics.
func TestDeltaSearchRow(t *testing.T) {
	l := edgelist.List{{U: 0, V: 2}, {U: 0, V: 5}, {U: 0, V: 9}, {U: 2, V: 0}}
	m := Build(l, 3, 1)
	dp := PackDelta(m, 1)
	cases := []struct {
		u, v uint32
		want bool
	}{
		{0, 2, true}, {0, 5, true}, {0, 9, true},
		{0, 0, false}, {0, 4, false}, {0, 10, false},
		{1, 0, false}, // empty row
		{2, 0, true}, {2, 1, false},
	}
	for _, c := range cases {
		if got := dp.SearchRow(c.u, c.v); got != c.want {
			t.Fatalf("delta SearchRow(%d, %d) = %v, want %v", c.u, c.v, got, c.want)
		}
	}
}
