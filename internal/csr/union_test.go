package csr

import (
	"testing"
	"testing/quick"

	"csrgraph/internal/edgelist"
)

func buildFrom(edges edgelist.List, n int) *Matrix {
	l := edges.Clone()
	l.SortByUV(1)
	l = l.Dedup()
	return Build(l, n, 1)
}

func TestUnionBasic(t *testing.T) {
	a := buildFrom(edgelist.List{{U: 0, V: 1}, {U: 1, V: 2}}, 3)
	b := buildFrom(edgelist.List{{U: 0, V: 1}, {U: 0, V: 2}, {U: 3, V: 0}}, 4)
	for _, p := range []int{1, 2, 4} {
		u := Union(a, b, p)
		if err := u.Validate(); err != nil {
			t.Fatal(err)
		}
		if u.NumNodes() != 4 || u.NumEdges() != 4 {
			t.Fatalf("p=%d: n=%d m=%d", p, u.NumNodes(), u.NumEdges())
		}
		for _, e := range []edgelist.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}, {U: 3, V: 0}} {
			if !u.HasEdgeBinary(e.U, e.V) {
				t.Fatalf("p=%d: union missing %v", p, e)
			}
		}
	}
}

func TestIntersectBasic(t *testing.T) {
	a := buildFrom(edgelist.List{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}}, 3)
	b := buildFrom(edgelist.List{{U: 0, V: 1}, {U: 2, V: 0}, {U: 2, V: 1}}, 3)
	got := Intersect(a, b, 2)
	if got.NumEdges() != 2 || !got.HasEdge(0, 1) || !got.HasEdge(2, 0) || got.HasEdge(1, 2) {
		t.Fatalf("intersection edges: %v", got.Edges())
	}
}

func TestDifferenceBasic(t *testing.T) {
	a := buildFrom(edgelist.List{{U: 0, V: 1}, {U: 1, V: 2}}, 3)
	b := buildFrom(edgelist.List{{U: 0, V: 1}}, 2)
	got := Difference(a, b, 2)
	if got.NumEdges() != 1 || !got.HasEdge(1, 2) {
		t.Fatalf("difference edges: %v", got.Edges())
	}
}

func TestSetOpsMismatchedNodeSpaces(t *testing.T) {
	small := buildFrom(edgelist.List{{U: 0, V: 1}}, 2)
	big := buildFrom(edgelist.List{{U: 5, V: 6}}, 7)
	u := Union(small, big, 2)
	if u.NumNodes() != 7 || u.NumEdges() != 2 {
		t.Fatalf("union over mismatched spaces: n=%d m=%d", u.NumNodes(), u.NumEdges())
	}
	i := Intersect(small, big, 2)
	if i.NumEdges() != 0 {
		t.Fatal("intersection should be empty")
	}
	d := Difference(big, small, 2)
	if d.NumEdges() != 1 || !d.HasEdge(5, 6) {
		t.Fatal("difference wrong")
	}
}

// Property: set-operation semantics match map-based set algebra.
func TestQuickSetOps(t *testing.T) {
	f := func(pa, pb []uint16, p uint8) bool {
		const n = 20
		mk := func(pairs []uint16) (edgelist.List, map[edgelist.Edge]bool) {
			var l edgelist.List
			set := map[edgelist.Edge]bool{}
			for i := 0; i+1 < len(pairs); i += 2 {
				e := edgelist.Edge{U: uint32(pairs[i]) % n, V: uint32(pairs[i+1]) % n}
				l = append(l, e)
				set[e] = true
			}
			return l, set
		}
		la, sa := mk(pa)
		lb, sb := mk(pb)
		a := buildFrom(la, n)
		b := buildFrom(lb, n)
		check := func(m *Matrix, want func(e edgelist.Edge) bool) bool {
			count := 0
			for u := uint32(0); u < n; u++ {
				for v := uint32(0); v < n; v++ {
					has := m.HasEdgeBinary(u, v)
					if has != want(edgelist.Edge{U: u, V: v}) {
						return false
					}
					if has {
						count++
					}
				}
			}
			return count == m.NumEdges()
		}
		pp := int(p)
		return check(Union(a, b, pp), func(e edgelist.Edge) bool { return sa[e] || sb[e] }) &&
			check(Intersect(a, b, pp), func(e edgelist.Edge) bool { return sa[e] && sb[e] }) &&
			check(Difference(a, b, pp), func(e edgelist.Edge) bool { return sa[e] && !sb[e] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
