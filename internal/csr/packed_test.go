package csr

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"
)

func TestPackMatrixRoundTrip(t *testing.T) {
	m := BuildSequential(paperGraph(), 10)
	for _, p := range []int{1, 2, 4, 16} {
		pk := PackMatrix(m, p)
		if !pk.Unpack().Equal(m) {
			t.Fatalf("p=%d: unpack(pack(m)) != m", p)
		}
		if pk.NumNodes() != 10 || pk.NumEdges() != 14 {
			t.Fatalf("p=%d: n=%d m=%d", p, pk.NumNodes(), pk.NumEdges())
		}
	}
}

func TestPackedWidths(t *testing.T) {
	m := BuildSequential(paperGraph(), 10)
	pk := PackMatrix(m, 1)
	// Max node id 9 -> 4 bits; max offset 14 -> 4 bits.
	if pk.NumBits() != 4 {
		t.Fatalf("NumBits = %d, want 4", pk.NumBits())
	}
	if pk.OffsetBits() != 4 {
		t.Fatalf("OffsetBits = %d, want 4", pk.OffsetBits())
	}
	// 11 offsets * 4 bits + 14 cols * 4 bits = 100 bits = 13 bytes, vs 100
	// bytes uncompressed.
	if pk.SizeBytes() != 13 {
		t.Fatalf("SizeBytes = %d, want 13", pk.SizeBytes())
	}
}

func TestPackedRowMatchesMatrix(t *testing.T) {
	l := randomSortedList(4000, 300, 20)
	m := Build(l, 300, 4)
	pk := PackMatrix(m, 4)
	var buf []uint32
	for u := uint32(0); u < 300; u++ {
		buf = pk.Row(buf, u)
		if !reflect.DeepEqual(buf, m.Neighbors(u)) && !(len(buf) == 0 && len(m.Neighbors(u)) == 0) {
			t.Fatalf("Row(%d) = %v, want %v", u, buf, m.Neighbors(u))
		}
		if pk.Degree(u) != m.Degree(u) {
			t.Fatalf("Degree(%d) mismatch", u)
		}
	}
}

func TestPackedNeighbor(t *testing.T) {
	m := BuildSequential(paperGraph(), 10)
	pk := PackMatrix(m, 1)
	if pk.Neighbor(7, 0) != 1 || pk.Neighbor(7, 1) != 2 {
		t.Fatal("Neighbor wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for out-of-range neighbor index")
		}
	}()
	pk.Neighbor(7, 2)
}

func TestPackedHasEdgeAgree(t *testing.T) {
	l := randomSortedList(3000, 200, 21)
	m := Build(l, 200, 2)
	pk := PackMatrix(m, 2)
	rng := rand.New(rand.NewSource(22))
	for i := 0; i < 3000; i++ {
		u, v := rng.Uint32()%200, rng.Uint32()%200
		want := m.HasEdge(u, v)
		if pk.HasEdge(u, v) != want || pk.HasEdgeBinary(u, v) != want {
			t.Fatalf("packed HasEdge(%d,%d) disagrees with matrix", u, v)
		}
	}
}

func TestPackedSmallerThanMatrixAndEdgeList(t *testing.T) {
	l := randomSortedList(20000, 5000, 23)
	m := Build(l, 5000, 4)
	pk := PackMatrix(m, 4)
	if pk.SizeBytes() >= m.SizeBytes() {
		t.Fatalf("packed %d bytes >= plain %d bytes", pk.SizeBytes(), m.SizeBytes())
	}
	if pk.SizeBytes() >= l.SizeBytes() {
		t.Fatalf("packed %d bytes >= edge list %d bytes", pk.SizeBytes(), l.SizeBytes())
	}
}

func TestPackedSerializationRoundTrip(t *testing.T) {
	l := randomSortedList(1000, 256, 24)
	pk := BuildPacked(l, 256, 4)
	var buf bytes.Buffer
	if _, err := pk.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPacked(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(pk) {
		t.Fatal("serialization round trip mismatch")
	}
}

func TestReadPackedErrors(t *testing.T) {
	if _, err := ReadPacked(bytes.NewReader([]byte("XXXX"))); err == nil {
		t.Fatal("want magic error")
	}
	if _, err := ReadPacked(bytes.NewReader([]byte("PC"))); err == nil {
		t.Fatal("want short header error")
	}
	if _, err := ReadPacked(bytes.NewReader([]byte("PCSR\x10\x00\x00\x00\x00\x00\x00\x00"))); err == nil {
		t.Fatal("want truncated part error")
	}
}

func TestPackedFileRoundTrip(t *testing.T) {
	pk := BuildPacked(paperGraph(), 10, 2)
	path := filepath.Join(t.TempDir(), "g.pcsr")
	if err := pk.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadPackedFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(pk) {
		t.Fatal("file round trip mismatch")
	}
	if _, err := LoadPackedFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("want error for missing file")
	}
}

func BenchmarkBuild(b *testing.B) {
	l := randomSortedList(1<<19, 1<<16, 30)
	for name, p := range map[string]int{"p=1": 1, "p=4": 4, "p=16": 16} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Build(l, 1<<16, p)
			}
		})
	}
}

func BenchmarkBuildPacked(b *testing.B) {
	l := randomSortedList(1<<19, 1<<16, 31)
	for name, p := range map[string]int{"p=1": 1, "p=4": 4, "p=16": 16} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				BuildPacked(l, 1<<16, p)
			}
		})
	}
}
