package csr

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"csrgraph/internal/bitpack"
	"csrgraph/internal/edgelist"
	"csrgraph/internal/gen"
)

// buildExpectedStream reconstructs the documented legacy layout from the
// parts' own MarshalBinary — the byte stream WriteTo produced before it was
// rewritten to stream through a chunk buffer, and must still produce.
func buildExpectedStream(t *testing.T, magic string, parts ...*bitpack.Packed) []byte {
	t.Helper()
	var buf bytes.Buffer
	buf.WriteString(magic)
	for _, p := range parts {
		payload, err := p.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var lenHdr [8]byte
		binary.LittleEndian.PutUint64(lenHdr[:], uint64(len(payload)))
		buf.Write(lenHdr[:])
		buf.Write(payload)
	}
	return buf.Bytes()
}

// TestWriteToByteCompat pins the streamed WriteTo to the original byte
// layout for both the packed and weighted stream formats, across widths
// that exercise partial trailing words.
func TestWriteToByteCompat(t *testing.T) {
	for _, edges := range []int{1, 37, 4000} {
		list, err := gen.ErdosRenyi(200, edges, uint64(edges), 2)
		if err != nil {
			t.Fatal(err)
		}
		prepared := list.Prepared(true, 2)
		pk := BuildPacked(prepared, prepared.NumNodes(), 2)
		var got bytes.Buffer
		n, err := pk.WriteTo(&got)
		if err != nil {
			t.Fatal(err)
		}
		off, cols := pk.Parts()
		want := buildExpectedStream(t, packedFileMagic, off, cols)
		if n != int64(len(want)) || !bytes.Equal(got.Bytes(), want) {
			t.Fatalf("edges=%d: WriteTo produced %d bytes, want %d identical bytes", edges, n, len(want))
		}
		back, err := ReadPacked(bytes.NewReader(got.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if !back.Equal(pk) {
			t.Fatalf("edges=%d: round trip lost data", edges)
		}
	}
}

func TestWeightedWriteToByteCompat(t *testing.T) {
	wedges := []WeightedEdge{{U: 0, V: 1, W: 10}, {U: 1, V: 3, W: 2}, {U: 3, V: 0, W: 900000}}
	wm, err := BuildWeighted(wedges, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	pw := PackWeighted(wm, 2)
	var got bytes.Buffer
	n, err := pw.WriteTo(&got)
	if err != nil {
		t.Fatal(err)
	}
	off, cols := pw.Parts()
	expected := append([]byte(packedWeightedMagic), buildExpectedStream(t, packedFileMagic, off, cols, pw.Vals())...)
	if n != int64(len(expected)) || !bytes.Equal(got.Bytes(), expected) {
		t.Fatalf("WriteTo produced %d bytes, want %d identical bytes", n, len(expected))
	}
	back, err := ReadPackedWeighted(bytes.NewReader(got.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if w, ok := back.Weight(3, 0); !ok || w != 900000 {
		t.Fatalf("Weight(3,0) = (%d,%v) after round trip", w, ok)
	}
}

// TestLegacyReadersRejectContainer pins the wrong-format error for both
// legacy entry points (the mgraph side of the mismatch is tested there).
func TestLegacyReadersRejectContainer(t *testing.T) {
	container := append([]byte(ContainerMagic), make([]byte, 128)...)
	if _, err := ReadPacked(bytes.NewReader(container)); !errors.Is(err, ErrContainerFile) {
		t.Fatalf("ReadPacked = %v, want ErrContainerFile", err)
	}
	if _, err := ReadPackedWeighted(bytes.NewReader(container)); !errors.Is(err, ErrContainerFile) {
		t.Fatalf("ReadPackedWeighted = %v, want ErrContainerFile", err)
	}
}

// TestReadPackedTruncation: every prefix of a valid stream must error
// cleanly, never panic and never allocate absurdly.
func TestReadPackedTruncation(t *testing.T) {
	list := edgelist.List{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}}
	pk := BuildPacked(list, 3, 1)
	var buf bytes.Buffer
	if _, err := pk.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut++ {
		if _, err := ReadPacked(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("ReadPacked accepted a %d/%d-byte truncation", cut, len(full))
		}
	}
}
