package csr

import (
	"fmt"

	"csrgraph/internal/edgelist"
	"csrgraph/internal/parallel"
	"csrgraph/internal/prefixsum"
)

// InducedSubgraph extracts the subgraph induced by the given node set,
// relabeling nodes densely in the order given (nodes[i] becomes id i).
// Edges whose endpoints are both in the set survive. The extraction is
// row-parallel: each processor filters and relabels its rows, then the
// offsets are rebuilt with the parallel prefix sum. The mapping back to
// original ids is returned alongside.
//
// Duplicate nodes in the set are an error, as they would make the inverse
// mapping ambiguous.
func InducedSubgraph(m *Matrix, nodes []edgelist.NodeID, p int) (*Matrix, []edgelist.NodeID, error) {
	relabel := make(map[uint32]uint32, len(nodes))
	for i, u := range nodes {
		if int(u) >= m.NumNodes() {
			return nil, nil, fmt.Errorf("csr: node %d out of range [0,%d)", u, m.NumNodes())
		}
		if _, dup := relabel[u]; dup {
			return nil, nil, fmt.Errorf("csr: duplicate node %d in subgraph set", u)
		}
		relabel[u] = uint32(i)
	}
	n := len(nodes)
	rows := make([][]uint32, n)
	parallel.For(n, p, func(_ int, r parallel.Range) {
		for i := r.Start; i < r.End; i++ {
			var row []uint32
			for _, w := range m.Neighbors(nodes[i]) {
				if nw, ok := relabel[w]; ok {
					row = append(row, nw)
				}
			}
			// Relabeling can break the ascending order when the node set is
			// not id-ordered; queries rely on sorted rows.
			sortRow(row)
			rows[i] = row
		}
	})
	deg := make([]uint32, n)
	for i := range rows {
		deg[i] = uint32(len(rows[i]))
	}
	off := prefixsum.Offsets(deg, p)
	cols := make([]uint32, off[n])
	parallel.For(n, p, func(_ int, r parallel.Range) {
		for i := r.Start; i < r.End; i++ {
			copy(cols[off[i]:off[i+1]], rows[i])
		}
	})
	mapping := make([]edgelist.NodeID, n)
	copy(mapping, nodes)
	return &Matrix{RowOffsets: off, Cols: cols}, mapping, nil
}

// sortRow sorts a (typically short) row ascending.
func sortRow(xs []uint32) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
