package csr

import (
	"bytes"
	"testing"
)

// FuzzReadPacked: the packed-CSR file reader consumes untrusted files and
// must reject corruption with an error, never a panic, and anything it
// accepts must be safely queryable.
func FuzzReadPacked(f *testing.F) {
	var buf bytes.Buffer
	pk := BuildPacked(paperGraph(), 10, 2)
	if _, err := pk.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	good := buf.Bytes()
	f.Add(good)
	// Corrupted variants as seeds.
	for _, cut := range []int{1, 4, 12, len(good) / 2} {
		if cut < len(good) {
			f.Add(good[:cut])
		}
	}
	flipped := append([]byte{}, good...)
	flipped[8] ^= 0xFF
	f.Add(flipped)
	f.Add([]byte("PCSR"))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadPacked(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever was accepted must answer queries without panicking.
		n := got.NumNodes()
		for u := 0; u < n && u < 64; u++ {
			_ = got.Degree(uint32(u))
			_ = got.Row(nil, uint32(u))
		}
		if n > 0 {
			_ = got.HasEdgeBinary(0, 0)
		}
	})
}
