package csr

import (
	"testing"

	"csrgraph/internal/edgelist"
	"csrgraph/internal/obs"
)

// TestBuildStageMetrics checks that a metrics-enabled build reports every
// pipeline stage and a sane fill-imbalance ratio, and that a disabled build
// reports nothing.
func TestBuildStageMetrics(t *testing.T) {
	l := edgelist.List{
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 1, V: 0}, {U: 1, V: 2},
		{U: 2, V: 0}, {U: 2, V: 1}, {U: 3, V: 0},
	}

	// Disabled: no stage may record.
	before := [4]int64{stageDegree.Count(), stageOffsets.Count(), stageFill.Count(), stagePack.Count()}
	PackMatrix(Build(l, 4, 2), 2)
	after := [4]int64{stageDegree.Count(), stageOffsets.Count(), stageFill.Count(), stagePack.Count()}
	if before != after {
		t.Fatalf("disabled build recorded stages: %v -> %v", before, after)
	}

	obs.SetEnabled(true)
	defer obs.SetEnabled(false)
	PackMatrix(Build(l, 4, 2), 2)
	now := [4]int64{stageDegree.Count(), stageOffsets.Count(), stageFill.Count(), stagePack.Count()}
	for i, name := range []string{"degree", "prefixsum", "fill", "bitpack"} {
		if now[i] != after[i]+1 {
			t.Errorf("stage %s recorded %d observations, want %d", name, now[i], after[i]+1)
		}
	}
	if r := fillImbalance.Value(); r < 1 {
		t.Errorf("fill imbalance = %g, want >= 1", r)
	}
}

// TestBuildMetricsEquivalence pins that the instrumented fill produces the
// same matrix as the plain path.
func TestBuildMetricsEquivalence(t *testing.T) {
	l := edgelist.List{
		{U: 0, V: 3}, {U: 1, V: 2}, {U: 2, V: 0}, {U: 3, V: 1}, {U: 3, V: 2},
	}
	plain := Build(l, 4, 2)
	obs.SetEnabled(true)
	defer obs.SetEnabled(false)
	timed := Build(l, 4, 2)
	if !plain.Equal(timed) {
		t.Fatal("metrics-enabled Build produced a different matrix")
	}
}
