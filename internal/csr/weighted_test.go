package csr

import (
	"bytes"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"csrgraph/internal/prefixsum"
)

func weightedFixture() []WeightedEdge {
	return []WeightedEdge{
		{U: 0, V: 1, W: 5}, {U: 0, V: 2, W: 3}, {U: 1, V: 2, W: 1},
		{U: 2, V: 3, W: 7}, {U: 3, V: 0, W: 2},
	}
}

func TestBuildWeightedBasic(t *testing.T) {
	for _, p := range []int{1, 2, 4} {
		m, err := BuildWeighted(weightedFixture(), 0, p)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Validate(); err != nil {
			t.Fatal(err)
		}
		if m.NumNodes() != 4 || m.NumEdges() != 5 {
			t.Fatalf("p=%d: n=%d m=%d", p, m.NumNodes(), m.NumEdges())
		}
		if w, ok := m.Weight(0, 2); !ok || w != 3 {
			t.Fatalf("Weight(0,2) = %d, %v", w, ok)
		}
		if _, ok := m.Weight(2, 0); ok {
			t.Fatal("nonexistent edge reported a weight")
		}
		cols, vals := m.NeighborWeights(0)
		if !reflect.DeepEqual(cols, []uint32{1, 2}) || !reflect.DeepEqual(vals, []uint32{5, 3}) {
			t.Fatalf("NeighborWeights(0) = %v, %v", cols, vals)
		}
	}
}

func TestBuildWeightedLastWinsOnDuplicates(t *testing.T) {
	edges := []WeightedEdge{
		{U: 0, V: 1, W: 5},
		{U: 0, V: 1, W: 9}, // later entry overrides
	}
	m, err := BuildWeighted(edges, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumEdges() != 1 {
		t.Fatalf("m = %d, want 1", m.NumEdges())
	}
	if w, _ := m.Weight(0, 1); w != 9 {
		t.Fatalf("weight = %d, want 9 (last wins)", w)
	}
}

func TestBuildWeightedNumNodesValidation(t *testing.T) {
	if _, err := BuildWeighted(weightedFixture(), 2, 1); err == nil {
		t.Fatal("want error for numNodes below max id")
	}
	m, err := BuildWeighted(weightedFixture(), 10, 1)
	if err != nil || m.NumNodes() != 10 {
		t.Fatalf("explicit numNodes: %v, n=%d", err, m.NumNodes())
	}
	empty, err := BuildWeighted(nil, 0, 2)
	if err != nil || empty.NumEdges() != 0 {
		t.Fatal("empty build failed")
	}
}

func TestBuildWeightedZeroWeight(t *testing.T) {
	m, err := BuildWeighted([]WeightedEdge{{U: 0, V: 1, W: 0}}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if w, ok := m.Weight(0, 1); !ok || w != 0 {
		t.Fatal("zero weight must be distinguishable from missing edge")
	}
}

func TestWeightedSizeAndValidate(t *testing.T) {
	m, _ := BuildWeighted(weightedFixture(), 0, 1)
	if m.SizeBytes() != m.Matrix.SizeBytes()+int64(len(m.Vals))*4 {
		t.Fatal("SizeBytes accounting wrong")
	}
	m.Vals = m.Vals[:2]
	if err := m.Validate(); err == nil {
		t.Fatal("want vA length error")
	}
}

func TestPackWeightedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	edges := make([]WeightedEdge, 3000)
	for i := range edges {
		edges[i] = WeightedEdge{
			U: rng.Uint32() % 300, V: rng.Uint32() % 300, W: rng.Uint32() % 1000,
		}
	}
	m, err := BuildWeighted(edges, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 2, 8} {
		pk := PackWeighted(m, p)
		back := pk.UnpackWeighted()
		if !back.Matrix.Equal(&m.Matrix) || !reflect.DeepEqual(back.Vals, m.Vals) {
			t.Fatalf("p=%d: weighted round trip mismatch", p)
		}
		// Spot-check packed weight queries.
		for i := 0; i < 200; i++ {
			u, v := rng.Uint32()%300, rng.Uint32()%300
			w1, ok1 := m.Weight(u, v)
			w2, ok2 := pk.Weight(u, v)
			if ok1 != ok2 || w1 != w2 {
				t.Fatalf("p=%d: packed Weight(%d,%d) = (%d,%v), want (%d,%v)", p, u, v, w2, ok2, w1, ok1)
			}
		}
		if pk.SizeBytes() >= m.SizeBytes() {
			t.Fatalf("p=%d: packed weighted not smaller", p)
		}
	}
}

func TestPackedWeightedRowWeights(t *testing.T) {
	m, _ := BuildWeighted(weightedFixture(), 0, 1)
	pk := PackWeighted(m, 1)
	got := pk.RowWeights(nil, 0)
	if !reflect.DeepEqual(got, []uint32{5, 3}) {
		t.Fatalf("RowWeights(0) = %v", got)
	}
}

func TestPackedWeightedSerialization(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	edges := make([]WeightedEdge, 1000)
	for i := range edges {
		edges[i] = WeightedEdge{U: rng.Uint32() % 100, V: rng.Uint32() % 100, W: rng.Uint32() % 500}
	}
	m, err := BuildWeighted(edges, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	pk := PackWeighted(m, 2)
	var buf bytes.Buffer
	if _, err := pk.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPackedWeighted(&buf)
	if err != nil {
		t.Fatal(err)
	}
	back := got.UnpackWeighted()
	if !back.Matrix.Equal(&m.Matrix) || !reflect.DeepEqual(back.Vals, m.Vals) {
		t.Fatal("weighted serialization round trip mismatch")
	}
	// Error paths.
	if _, err := ReadPackedWeighted(bytes.NewReader([]byte("XXXX"))); err == nil {
		t.Fatal("want magic error")
	}
	if _, err := ReadPackedWeighted(bytes.NewReader([]byte("WC"))); err == nil {
		t.Fatal("want short header error")
	}
	var buf2 bytes.Buffer
	if _, err := pk.WriteTo(&buf2); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadPackedWeighted(bytes.NewReader(buf2.Bytes()[:buf2.Len()-3])); err == nil {
		t.Fatal("want truncation error")
	}
}

// Property: weighted build preserves the weight of every input edge (last
// occurrence wins), independent of p.
func TestQuickWeightedBuild(t *testing.T) {
	f := func(raw []uint16, p uint8) bool {
		const n = 24
		edges := make([]WeightedEdge, 0, len(raw)/3)
		for i := 0; i+2 < len(raw); i += 3 {
			edges = append(edges, WeightedEdge{
				U: uint32(raw[i]) % n, V: uint32(raw[i+1]) % n, W: uint32(raw[i+2]),
			})
		}
		m, err := BuildWeighted(edges, n, int(p))
		if err != nil || m.Validate() != nil {
			return false
		}
		// Last weight per (u,v) from the input.
		want := map[[2]uint32]uint32{}
		for _, e := range edges {
			want[[2]uint32{e.U, e.V}] = e.W
		}
		if m.NumEdges() != len(want) {
			return false
		}
		for k, w := range want {
			got, ok := m.Weight(k[0], k[1])
			if !ok || got != w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// buildWeightedReference is the pre-radix BuildWeighted pipeline
// (sort.SliceStable + last-wins dedup over a copied edge slice), kept as
// the differential reference for the fused SortKV path.
func buildWeightedReference(edges []WeightedEdge, numNodes int) (*WeightedMatrix, error) {
	sorted := make([]WeightedEdge, len(edges))
	copy(sorted, edges)
	sort.SliceStable(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.U != b.U {
			return a.U < b.U
		}
		return a.V < b.V
	})
	out := sorted[:0]
	for i, e := range sorted {
		if i > 0 && e.U == out[len(out)-1].U && e.V == out[len(out)-1].V {
			out[len(out)-1] = e
			continue
		}
		out = append(out, e)
	}
	sorted = out
	maxNode := 0
	for _, e := range sorted {
		if int(e.U) >= maxNode {
			maxNode = int(e.U) + 1
		}
		if int(e.V) >= maxNode {
			maxNode = int(e.V) + 1
		}
	}
	if numNodes == 0 {
		numNodes = maxNode
	}
	deg := make([]uint32, numNodes)
	for _, e := range sorted {
		deg[e.U]++
	}
	off := prefixsum.Offsets(deg, 1)
	cols := make([]uint32, len(sorted))
	vals := make([]uint32, len(sorted))
	for i, e := range sorted {
		cols[i] = e.V
		vals[i] = e.W
	}
	return &WeightedMatrix{Matrix: Matrix{RowOffsets: off, Cols: cols}, Vals: vals}, nil
}

// TestBuildWeightedMatchesStableReference differentially tests the radix
// SortKV build against the retained comparison-sort reference, with heavy
// duplicate (u, v) runs so "last weight wins" is genuinely exercised.
func TestBuildWeightedMatchesStableReference(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, n := range []int{0, 1, 100, 5000} {
		edges := make([]WeightedEdge, n)
		for i := range edges {
			edges[i] = WeightedEdge{
				U: uint32(rng.Intn(40)),
				V: uint32(rng.Intn(40)),
				W: uint32(rng.Intn(1000)),
			}
		}
		want, err := buildWeightedReference(edges, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []int{1, 4} {
			got, err := BuildWeighted(edges, 0, p)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("n=%d p=%d: BuildWeighted disagrees with stable-sort reference", n, p)
			}
		}
	}
}
