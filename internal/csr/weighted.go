package csr

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"csrgraph/internal/bitpack"
	"csrgraph/internal/edgelist"
	"csrgraph/internal/parallel"
	"csrgraph/internal/prefixsum"
	"csrgraph/internal/radix"
)

// The paper's CSR definition (Section III) includes a third array for
// weighted graphs: "vA: a value array (if the graph is weighted)". This
// file supplies that form. Weights are uint32 (costs, capacities,
// timestamps, multiplicities); zero is a valid weight.

// WeightedEdge is a directed edge with a weight; it aliases the edgelist
// type so I/O and construction share one representation.
type WeightedEdge = edgelist.WeightedEdge

// WeightedMatrix is CSR with the vA value array: Vals[i] is the weight of
// the edge whose destination is Cols[i].
type WeightedMatrix struct {
	Matrix
	Vals []uint32
}

// BuildWeighted constructs a weighted CSR from an edge list using p
// processors. The input is copied and sorted by (u, v); among duplicate
// (u, v) pairs the *last* weight in the input order wins, like repeated
// map assignment.
//
// Edges never materialize as a sorted WeightedEdge copy: the (u, v) pairs
// are packed into uint64 radix keys with the weights riding along as the
// payload of radix.SortKV — LSD radix is stable by construction, so "last
// wins" stays well defined without the sort.SliceStable closure this
// replaced — and the CSR arrays are then filled straight from the sorted
// key/payload buffers (the vA array is the payload buffer itself).
func BuildWeighted(edges []WeightedEdge, numNodes, p int) (*WeightedMatrix, error) {
	n := len(edges)
	keys := make([]uint64, n)
	vals := make([]uint32, n)
	chunks := parallel.Chunks(n, p)
	nc := len(chunks)
	maxs := make([]uint32, nc)
	parallel.For(n, nc, func(c int, r parallel.Range) {
		var mx uint32
		for i := r.Start; i < r.End; i++ {
			e := edges[i]
			keys[i] = uint64(e.U)<<32 | uint64(e.V)
			vals[i] = e.W
			if e.U > mx {
				mx = e.U
			}
			if e.V > mx {
				mx = e.V
			}
		}
		maxs[c] = mx
	})
	maxNode := 0
	for _, mx := range maxs {
		if int(mx)+1 > maxNode {
			maxNode = int(mx) + 1
		}
	}
	radix.SortKV(keys, vals, make([]uint64, n), make([]uint32, n), p)
	// Dedup keeping the last of each equal-key run, compacting in place.
	w := 0
	for i := 0; i < n; i++ {
		if w > 0 && keys[i] == keys[w-1] {
			vals[w-1] = vals[i]
			continue
		}
		keys[w], vals[w] = keys[i], vals[i]
		w++
	}
	keys, vals = keys[:w], vals[:w]

	if numNodes == 0 {
		numNodes = maxNode
	}
	if numNodes < maxNode {
		return nil, fmt.Errorf("csr: numNodes %d below max node id %d", numNodes, maxNode-1)
	}

	deg := make([]uint32, numNodes)
	for _, k := range keys {
		deg[k>>32]++
	}
	off := prefixsum.Offsets(deg, p)
	cols := make([]uint32, w)
	parallel.For(w, p, func(_ int, r parallel.Range) {
		for i := r.Start; i < r.End; i++ {
			cols[i] = uint32(keys[i])
		}
	})
	return &WeightedMatrix{Matrix: Matrix{RowOffsets: off, Cols: cols}, Vals: vals}, nil
}

// Weight returns the weight of edge (u, v) and whether the edge exists.
func (m *WeightedMatrix) Weight(u, v edgelist.NodeID) (uint32, bool) {
	lo, hi := int(m.RowOffsets[u]), int(m.RowOffsets[u+1])
	for lo < hi {
		mid := (lo + hi) / 2
		if m.Cols[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < int(m.RowOffsets[u+1]) && m.Cols[lo] == v {
		return m.Vals[lo], true
	}
	return 0, false
}

// NeighborWeights returns u's neighbor and weight slices (views into the
// CSR arrays; callers must not modify them).
func (m *WeightedMatrix) NeighborWeights(u edgelist.NodeID) (cols, vals []uint32) {
	return m.Cols[m.RowOffsets[u]:m.RowOffsets[u+1]], m.Vals[m.RowOffsets[u]:m.RowOffsets[u+1]]
}

// SizeBytes includes the vA array.
func (m *WeightedMatrix) SizeBytes() int64 {
	return m.Matrix.SizeBytes() + int64(len(m.Vals))*4
}

// Validate extends Matrix validation with the vA length invariant.
func (m *WeightedMatrix) Validate() error {
	if err := m.Matrix.Validate(); err != nil {
		return err
	}
	if len(m.Vals) != len(m.Cols) {
		return fmt.Errorf("csr: vA length %d, want %d", len(m.Vals), len(m.Cols))
	}
	return nil
}

// PackedWeighted is the bit-packed weighted CSR: iA, jA and vA all packed
// per Algorithm 4.
type PackedWeighted struct {
	Packed
	vals *bitpack.Packed
}

// PackWeighted bit-packs all three arrays with p processors.
func PackWeighted(m *WeightedMatrix, p int) *PackedWeighted {
	return &PackedWeighted{
		Packed: Packed{off: bitpack.Pack(m.RowOffsets, p), cols: bitpack.Pack(m.Cols, p)},
		vals:   bitpack.Pack(m.Vals, p),
	}
}

// AssemblePackedWeighted wraps externally constructed iA/jA/vA packed
// arrays (mapped container sections) as a PackedWeighted, with the same
// offsets-only validation policy as AssemblePacked plus the vA length
// invariant.
func AssemblePackedWeighted(off, cols, vals *bitpack.Packed) (*PackedWeighted, error) {
	base, err := AssemblePacked(off, cols)
	if err != nil {
		return nil, err
	}
	if vals.Len() != base.NumEdges() {
		return nil, fmt.Errorf("csr: vA has %d values, want %d", vals.Len(), base.NumEdges())
	}
	return &PackedWeighted{Packed: *base, vals: vals}, nil
}

// Vals returns the packed vA array, for serializers laying out raw
// sections. Read-only.
func (pk *PackedWeighted) Vals() *bitpack.Packed { return pk.vals }

// Weight returns the weight of (u, v) from the packed arrays.
func (pk *PackedWeighted) Weight(u, v edgelist.NodeID) (uint32, bool) {
	start, end := pk.RowBounds(u)
	lo, hi := start, end
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if pk.cols.Get(mid) < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < end && pk.cols.Get(lo) == v {
		return pk.vals.Get(lo), true
	}
	return 0, false
}

// RowWeights decodes u's weights into dst.
func (pk *PackedWeighted) RowWeights(dst []uint32, u edgelist.NodeID) []uint32 {
	start, end := pk.RowBounds(u)
	return pk.vals.Slice(dst, start, end-start)
}

// SizeBytes includes the packed vA payload.
func (pk *PackedWeighted) SizeBytes() int64 {
	return pk.Packed.SizeBytes() + pk.vals.SizeBytes()
}

// UnpackWeighted expands back to a WeightedMatrix.
func (pk *PackedWeighted) UnpackWeighted() *WeightedMatrix {
	return &WeightedMatrix{Matrix: *pk.Packed.Unpack(), Vals: pk.vals.Unpack()}
}

const packedWeightedMagic = "WCSR"

// WriteTo serializes the packed weighted CSR: magic, the embedded packed
// CSR (iA, jA), then the length-prefixed packed vA payload. Like
// Packed.WriteTo, every payload streams through one reused chunk buffer.
func (pk *PackedWeighted) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var written int64
	n, err := bw.WriteString(packedWeightedMagic)
	written += int64(n)
	if err != nil {
		return written, err
	}
	n, err = bw.WriteString(packedFileMagic)
	written += int64(n)
	if err != nil {
		return written, err
	}
	scratch := make([]byte, partStreamBuf)
	for _, part := range []*bitpack.Packed{pk.off, pk.cols, pk.vals} {
		m, err := writePartStream(bw, part, scratch)
		written += m
		if err != nil {
			return written, err
		}
	}
	return written, bw.Flush()
}

// ReadPackedWeighted deserializes a packed weighted CSR written by
// WriteTo.
func ReadPackedWeighted(r io.Reader) (*PackedWeighted, error) {
	magic := make([]byte, 4)
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("csr: weighted header: %w", err)
	}
	if string(magic) == ContainerMagic {
		return nil, ErrContainerFile
	}
	if string(magic) != packedWeightedMagic {
		return nil, fmt.Errorf("csr: bad weighted magic %q", magic)
	}
	base, err := ReadPacked(r)
	if err != nil {
		return nil, err
	}
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("csr: vA length: %w", err)
	}
	size := binary.LittleEndian.Uint64(hdr[:])
	const maxPart = 1 << 36
	if size > maxPart {
		return nil, fmt.Errorf("csr: implausible vA size %d", size)
	}
	var payload bytes.Buffer
	payload.Grow(int(min(size, 1<<20)))
	if _, err := io.CopyN(&payload, r, int64(size)); err != nil {
		return nil, fmt.Errorf("csr: vA payload: %w", err)
	}
	vals := new(bitpack.Packed)
	if err := vals.UnmarshalBinary(payload.Bytes()); err != nil {
		return nil, fmt.Errorf("csr: vA: %w", err)
	}
	if vals.Len() != base.NumEdges() {
		return nil, fmt.Errorf("csr: vA has %d values, want %d", vals.Len(), base.NumEdges())
	}
	return &PackedWeighted{Packed: *base, vals: vals}, nil
}
