package csr

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"csrgraph/internal/edgelist"
)

func TestDeltaPackedRoundTrip(t *testing.T) {
	m := BuildSequential(paperGraph(), 10)
	for _, p := range []int{1, 2, 4, 16} {
		dp := PackDelta(m, p)
		if dp.NumNodes() != 10 || dp.NumEdges() != 14 {
			t.Fatalf("p=%d: n=%d m=%d", p, dp.NumNodes(), dp.NumEdges())
		}
		if !dp.Unpack().Equal(m) {
			t.Fatalf("p=%d: unpack(delta(m)) != m", p)
		}
	}
}

func TestDeltaPackedRowAndDegree(t *testing.T) {
	l := randomSortedList(4000, 500, 40)
	m := Build(l, 500, 4)
	dp := PackDelta(m, 4)
	var buf []uint32
	for u := uint32(0); u < 500; u++ {
		buf = dp.Row(buf, u)
		want := m.Neighbors(u)
		if len(buf) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual([]uint32(buf), want) {
			t.Fatalf("Row(%d) = %v, want %v", u, buf, want)
		}
		if dp.Degree(u) != m.Degree(u) {
			t.Fatalf("Degree(%d) mismatch", u)
		}
	}
}

func TestDeltaPackedHasEdge(t *testing.T) {
	l := randomSortedList(3000, 200, 41)
	m := Build(l, 200, 2)
	dp := PackDelta(m, 2)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		u, v := rng.Uint32()%200, rng.Uint32()%200
		if dp.HasEdge(u, v) != m.HasEdge(u, v) {
			t.Fatalf("HasEdge(%d,%d) disagrees", u, v)
		}
	}
}

func TestDeltaPackedZeroIsEncodable(t *testing.T) {
	// Node 0 as a neighbor exercises the +1 shift on the absolute head.
	m := BuildSequential(edgelist.List{{U: 1, V: 0}, {U: 1, V: 5}}, 6)
	dp := PackDelta(m, 1)
	if got := dp.Row(nil, 1); !reflect.DeepEqual([]uint32(got), []uint32{0, 5}) {
		t.Fatalf("Row(1) = %v", got)
	}
	if !dp.HasEdge(1, 0) {
		t.Fatal("edge to node 0 lost")
	}
}

func TestDeltaPackedCompressesSkewedRows(t *testing.T) {
	// Clustered neighbor ids (small gaps) are where delta-gamma shines;
	// verify it beats fixed-width on such input.
	var l edgelist.List
	for u := uint32(0); u < 800; u++ {
		for k := uint32(0); k < 30; k++ {
			l = append(l, edgelist.Edge{U: u, V: u + k}) // gaps of 1: gamma codes 1 bit each
		}
	}
	l.SortByUV(1)
	l = l.Dedup()
	m := Build(l, int(l.MaxNode())+1, 2)
	fixed := PackMatrix(m, 2)
	delta := PackDelta(m, 2)
	if delta.SizeBytes() >= fixed.SizeBytes() {
		t.Fatalf("delta %d bytes >= fixed %d bytes on clustered rows",
			delta.SizeBytes(), fixed.SizeBytes())
	}
}

func TestDeltaPackedParallelDeterminism(t *testing.T) {
	l := randomSortedList(5000, 700, 43)
	m := Build(l, 700, 2)
	base := PackDelta(m, 1)
	for _, p := range []int{2, 5, 32} {
		dp := PackDelta(m, p)
		if dp.SizeBytes() != base.SizeBytes() || !dp.Unpack().Equal(m) {
			t.Fatalf("p=%d: delta pack not deterministic", p)
		}
	}
}

// Property: delta round trip preserves adjacency exactly.
func TestQuickDeltaRoundTrip(t *testing.T) {
	f := func(pairs []uint16, p uint8) bool {
		l := make(edgelist.List, 0, len(pairs)/2)
		for i := 0; i+1 < len(pairs); i += 2 {
			l = append(l, edgelist.Edge{U: uint32(pairs[i]) % 40, V: uint32(pairs[i+1]) % 40})
		}
		l.SortByUV(1)
		l = l.Dedup()
		m := Build(l, 40, 2)
		return PackDelta(m, int(p)).Unpack().Equal(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestDeltaPackedQueriesDoNotAllocate(t *testing.T) {
	m := BuildSequential(paperGraph(), 10)
	dp := PackDelta(m, 1)
	allocs := testing.AllocsPerRun(100, func() {
		if !dp.HasEdge(0, 5) {
			t.Fatal("paper graph must contain edge 0->5")
		}
		_ = dp.Degree(3)
		_ = dp.SearchRow(2, 7)
	})
	if allocs != 0 {
		t.Fatalf("delta row queries allocated %.1f times per run; row readers must stay on the stack", allocs)
	}
}
