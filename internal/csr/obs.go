package csr

// Construction-pipeline instrumentation: per-stage wall times for the
// degree → prefix-sum → fill → bit-pack pipeline (Algorithms 1-4), plus a
// per-chunk imbalance gauge for the fill — the stage whose static split is
// most exposed to skewed edge distributions. The stage histograms share one
// family so a scrape reads the whole pipeline profile at once; imbalance is
// slowest-chunk time over mean chunk time (1.0 = perfectly balanced), the
// load-balance figure the Ligra-style runtimes tune against.

import "csrgraph/internal/obs"

var (
	stageDegree  = obs.GetDurationHistogram(`csrgraph_build_stage_seconds{stage="degree"}`)
	stageOffsets = obs.GetDurationHistogram(`csrgraph_build_stage_seconds{stage="prefixsum"}`)
	stageFill    = obs.GetDurationHistogram(`csrgraph_build_stage_seconds{stage="fill"}`)
	stagePack    = obs.GetDurationHistogram(`csrgraph_build_stage_seconds{stage="bitpack"}`)

	fillImbalance = obs.GetGauge("csrgraph_build_fill_imbalance")
)
