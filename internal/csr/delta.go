package csr

import (
	"fmt"

	"csrgraph/internal/bitarray"
	"csrgraph/internal/bitpack"
	"csrgraph/internal/edgelist"
	"csrgraph/internal/parallel"
	"csrgraph/internal/prefixsum"
)

// DeltaPacked is the ablation alternative to the fixed-width Packed form:
// each row's ascending neighbor list is stored as Elias-gamma-coded gaps
// (first value absolute, +1-shifted). Skewed social rows compress harder
// than fixed-width packing, but random access inside a row is lost — every
// query decodes the row left to right. DESIGN.md §5 item 3 benchmarks the
// trade-off.
type DeltaPacked struct {
	// offsets[u] is the bit position of row u in payload; offsets has
	// n+1 entries, packed fixed-width so the structure stays compact.
	offsets *bitpack.Packed
	payload *bitarray.Array
	n       int
	m       int
}

// PackDelta builds the delta-gamma form from a CSR with p processors: rows
// are encoded per node chunk into private bit arrays (the Algorithm 4
// pattern), per-row bit lengths are prefix-summed into offsets, and the
// chunk arrays are merged.
func PackDelta(mat *Matrix, p int) *DeltaPacked {
	n := mat.NumNodes()
	chunks := parallel.Chunks(n, p)
	parts := make([]*bitarray.Array, len(chunks))
	bitLens := make([]uint32, n)
	parallel.For(n, len(chunks), func(c int, r parallel.Range) {
		a := bitarray.New(0)
		for u := r.Start; u < r.End; u++ {
			startBits := a.Len()
			encodeDeltaRow(a, mat.Neighbors(uint32(u)))
			bitLens[u] = uint32(a.Len() - startBits)
		}
		parts[c] = a
	})
	offsets := prefixsum.Offsets(bitLens, p)
	payload := bitarray.New(int(offsets[n]))
	for _, part := range parts {
		payload.AppendArray(part)
	}
	return &DeltaPacked{
		offsets: bitpack.Pack(offsets, p),
		payload: payload,
		n:       n,
		m:       mat.NumEdges(),
	}
}

// encodeDeltaRow appends gamma(first+1), then gamma(gap) for each
// subsequent neighbor (gaps of strictly ascending rows are >= 1, so the
// +1 shift is only needed for the absolute head).
func encodeDeltaRow(a *bitarray.Array, row []uint32) {
	prev := uint32(0)
	for i, v := range row {
		if i == 0 {
			appendGamma(a, uint64(v)+1)
		} else {
			appendGamma(a, uint64(v-prev))
		}
		prev = v
	}
}

// appendGamma writes the Elias gamma code of x >= 1.
func appendGamma(a *bitarray.Array, x uint64) {
	n := 0
	for t := x; t > 1; t >>= 1 {
		n++
	}
	a.AppendBits(0, n)
	a.AppendBits(x, n+1)
}

// readGamma decodes one gamma value from r.
func readGamma(r *bitarray.Reader) uint64 {
	n := 0
	for r.Remaining() > 0 && !r.ReadBit() {
		n++
	}
	if n == 0 {
		return 1
	}
	// A malformed stream (mapped containers carry untrusted payload bits)
	// can run the unary prefix past the row or demand more mantissa bits
	// than remain; clamp so decoding yields an arbitrary value instead of
	// reading outside the array. Valid streams never take these branches.
	if n > 64 {
		n = 64
	}
	if rem := r.Remaining(); n > rem {
		n = rem
	}
	if n == 0 {
		return 1
	}
	return 1<<uint(n) | r.ReadUint(n)
}

// AssembleDeltaPacked wraps externally constructed row-offset and gamma
// payload arrays (mapped container sections) as a DeltaPacked for a graph
// of numNodes nodes and numEdges edges. Offsets must be monotone from 0
// and end exactly at the payload bit length — the invariant row decoding
// needs to stay inside the payload. The gamma stream itself is not decoded
// here; a corrupt payload yields wrong neighbor values, not panics, as
// long as the offsets bound each row.
func AssembleDeltaPacked(offsets *bitpack.Packed, payload *bitarray.Array, numNodes, numEdges int) (*DeltaPacked, error) {
	if numNodes < 0 || numEdges < 0 || offsets.Len() != numNodes+1 {
		return nil, fmt.Errorf("csr: delta offsets has %d entries, want %d", offsets.Len(), numNodes+1)
	}
	prev := offsets.Get(0)
	if prev != 0 {
		return nil, fmt.Errorf("csr: first delta offset %d, want 0", prev)
	}
	for i := 1; i <= numNodes; i++ {
		cur := offsets.Get(i)
		if cur < prev {
			return nil, fmt.Errorf("csr: delta offsets decrease at %d (%d < %d)", i, cur, prev)
		}
		prev = cur
	}
	if int(prev) != payload.Len() {
		return nil, fmt.Errorf("csr: delta offsets claim %d payload bits, payload has %d", prev, payload.Len())
	}
	return &DeltaPacked{offsets: offsets, payload: payload, n: numNodes, m: numEdges}, nil
}

// Parts returns the packed offset array and the gamma payload backing the
// structure, for serializers laying out raw sections. Read-only.
func (dp *DeltaPacked) Parts() (*bitpack.Packed, *bitarray.Array) {
	return dp.offsets, dp.payload
}

// NumNodes returns the number of nodes.
func (dp *DeltaPacked) NumNodes() int { return dp.n }

// NumEdges returns the number of directed edges.
func (dp *DeltaPacked) NumEdges() int { return dp.m }

// rowReader positions a reader at row u and returns it with the row's end
// bit. The reader is a value so per-row cursors on the HasEdge/SearchRow
// hot path never touch the heap.
func (dp *DeltaPacked) rowReader(u edgelist.NodeID) (bitarray.Reader, int) {
	start := int(dp.offsets.Get(int(u)))
	end := int(dp.offsets.Get(int(u) + 1))
	return bitarray.MakeReader(dp.payload, start), end
}

// Degree returns the out-degree of u by decoding the row (the structure
// does not store degrees separately).
func (dp *DeltaPacked) Degree(u edgelist.NodeID) int {
	r, end := dp.rowReader(u)
	d := 0
	for r.Pos() < end {
		readGamma(&r)
		d++
	}
	return d
}

// Row decodes u's neighbors into dst.
func (dp *DeltaPacked) Row(dst []uint32, u edgelist.NodeID) []uint32 {
	r, end := dp.rowReader(u)
	dst = dst[:0]
	first := true
	var run uint32
	for r.Pos() < end {
		g := uint32(readGamma(&r))
		if first {
			run = g - 1
			first = false
		} else {
			run += g
		}
		dst = append(dst, run)
	}
	return dst
}

// HasEdge reports whether (u, v) exists by decoding u's row until v is
// found or passed.
func (dp *DeltaPacked) HasEdge(u, v edgelist.NodeID) bool {
	r, end := dp.rowReader(u)
	first := true
	var run uint32
	for r.Pos() < end {
		g := uint32(readGamma(&r))
		if first {
			run = g - 1
			first = false
		} else {
			run += g
		}
		if run == v {
			return true
		}
		if run > v {
			return false
		}
	}
	return false
}

// SearchRow reports whether (u, v) exists. Gamma-coded rows have no random
// access, so the best "search" is HasEdge's sequential decode with early
// exit once the running neighbor id passes v; the method exists so the
// query engine's zero-materialization path covers the delta form too (no
// full-row buffer is ever built).
//
//csr:hotpath
func (dp *DeltaPacked) SearchRow(u, v edgelist.NodeID) bool {
	return dp.HasEdge(u, v)
}

// Unpack expands back to a plain Matrix.
func (dp *DeltaPacked) Unpack() *Matrix {
	off := make([]uint32, dp.n+1)
	cols := make([]uint32, 0, dp.m)
	var buf []uint32
	for u := 0; u < dp.n; u++ {
		buf = dp.Row(buf, uint32(u))
		cols = append(cols, buf...)
		off[u+1] = uint32(len(cols))
	}
	return &Matrix{RowOffsets: off, Cols: cols}
}

// SizeBytes returns the payload plus offset footprint.
func (dp *DeltaPacked) SizeBytes() int64 {
	return int64(dp.payload.SizeBytes()) + dp.offsets.SizeBytes()
}
