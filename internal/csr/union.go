package csr

import (
	"csrgraph/internal/parallel"
	"csrgraph/internal/prefixsum"
)

// Union returns the edge union of two CSR graphs over the larger of the
// two node spaces: row u of the result is the sorted merge of both
// inputs' rows for u, deduplicated. Rows merge in parallel and the
// offsets rebuild with the parallel prefix sum.
func Union(a, b *Matrix, p int) *Matrix {
	n := a.NumNodes()
	if bn := b.NumNodes(); bn > n {
		n = bn
	}
	rows := make([][]uint32, n)
	deg := make([]uint32, n)
	parallel.For(n, p, func(_ int, r parallel.Range) {
		for u := r.Start; u < r.End; u++ {
			var ra, rb []uint32
			if u < a.NumNodes() {
				ra = a.Neighbors(uint32(u))
			}
			if u < b.NumNodes() {
				rb = b.Neighbors(uint32(u))
			}
			rows[u] = mergeSortedDedup(ra, rb)
			deg[u] = uint32(len(rows[u]))
		}
	})
	off := prefixsum.Offsets(deg, p)
	cols := make([]uint32, off[n])
	parallel.For(n, p, func(_ int, r parallel.Range) {
		for u := r.Start; u < r.End; u++ {
			copy(cols[off[u]:off[u+1]], rows[u])
		}
	})
	return &Matrix{RowOffsets: off, Cols: cols}
}

// Intersect returns the edge intersection of two CSR graphs: only edges
// present in both survive. The node space is the larger of the two.
func Intersect(a, b *Matrix, p int) *Matrix {
	n := a.NumNodes()
	if bn := b.NumNodes(); bn > n {
		n = bn
	}
	rows := make([][]uint32, n)
	deg := make([]uint32, n)
	parallel.For(n, p, func(_ int, r parallel.Range) {
		for u := r.Start; u < r.End; u++ {
			if u >= a.NumNodes() || u >= b.NumNodes() {
				continue
			}
			rows[u] = intersectSorted(a.Neighbors(uint32(u)), b.Neighbors(uint32(u)))
			deg[u] = uint32(len(rows[u]))
		}
	})
	off := prefixsum.Offsets(deg, p)
	cols := make([]uint32, off[n])
	parallel.For(n, p, func(_ int, r parallel.Range) {
		for u := r.Start; u < r.End; u++ {
			copy(cols[off[u]:off[u+1]], rows[u])
		}
	})
	return &Matrix{RowOffsets: off, Cols: cols}
}

// Difference returns the edges of a that are not in b.
func Difference(a, b *Matrix, p int) *Matrix {
	n := a.NumNodes()
	rows := make([][]uint32, n)
	deg := make([]uint32, n)
	parallel.For(n, p, func(_ int, r parallel.Range) {
		for u := r.Start; u < r.End; u++ {
			var rb []uint32
			if u < b.NumNodes() {
				rb = b.Neighbors(uint32(u))
			}
			rows[u] = subtractSorted(a.Neighbors(uint32(u)), rb)
			deg[u] = uint32(len(rows[u]))
		}
	})
	off := prefixsum.Offsets(deg, p)
	cols := make([]uint32, off[n])
	parallel.For(n, p, func(_ int, r parallel.Range) {
		for u := r.Start; u < r.End; u++ {
			copy(cols[off[u]:off[u+1]], rows[u])
		}
	})
	return &Matrix{RowOffsets: off, Cols: cols}
}

func mergeSortedDedup(a, b []uint32) []uint32 {
	if len(a) == 0 && len(b) == 0 {
		return nil
	}
	out := make([]uint32, 0, len(a)+len(b))
	i, j := 0, 0
	push := func(v uint32) {
		if len(out) == 0 || out[len(out)-1] != v {
			out = append(out, v)
		}
	}
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			push(a[i])
			i++
			j++
		case a[i] < b[j]:
			push(a[i])
			i++
		default:
			push(b[j])
			j++
		}
	}
	for ; i < len(a); i++ {
		push(a[i])
	}
	for ; j < len(b); j++ {
		push(b[j])
	}
	return out
}

func intersectSorted(a, b []uint32) []uint32 {
	var out []uint32
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return out
}

func subtractSorted(a, b []uint32) []uint32 {
	var out []uint32
	i, j := 0, 0
	for i < len(a) {
		switch {
		case j >= len(b) || a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] == b[j]:
			i++
			j++
		default:
			j++
		}
	}
	return out
}
