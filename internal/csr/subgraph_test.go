package csr

import (
	"reflect"
	"testing"

	"csrgraph/internal/edgelist"
)

func TestInducedSubgraphBasic(t *testing.T) {
	m := BuildSequential(paperGraph(), 10)
	// Take nodes {1, 6, 7}: edges 1->6, 1->7, 6->1, 7->1 survive; 7->2
	// drops.
	sub, mapping, err := InducedSubgraph(m, []edgelist.NodeID{1, 6, 7}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
	if sub.NumNodes() != 3 || sub.NumEdges() != 4 {
		t.Fatalf("n=%d m=%d", sub.NumNodes(), sub.NumEdges())
	}
	if !reflect.DeepEqual(mapping, []edgelist.NodeID{1, 6, 7}) {
		t.Fatalf("mapping = %v", mapping)
	}
	// Relabeled: 1->0, 6->1, 7->2.
	if !sub.HasEdge(0, 1) || !sub.HasEdge(0, 2) || !sub.HasEdge(1, 0) || !sub.HasEdge(2, 0) {
		t.Fatalf("edges wrong: %v", sub.Edges())
	}
	if sub.HasEdge(1, 2) {
		t.Fatal("spurious edge")
	}
}

func TestInducedSubgraphUnorderedSetSortsRows(t *testing.T) {
	// Node set in reverse order forces relabel inversions.
	m := BuildSequential(paperGraph(), 10)
	sub, _, err := InducedSubgraph(m, []edgelist.NodeID{7, 2, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
	// 7 -> 0, 2 -> 1, 1 -> 2. Edges: 7->1 => 0->2; 7->2 => 0->1;
	// 2->7 => 1->0; 1->7 => 2->0.
	if got := sub.Neighbors(0); !reflect.DeepEqual(got, []uint32{1, 2}) {
		t.Fatalf("Neighbors(0) = %v, want sorted [1 2]", got)
	}
}

func TestInducedSubgraphErrors(t *testing.T) {
	m := BuildSequential(paperGraph(), 10)
	if _, _, err := InducedSubgraph(m, []edgelist.NodeID{1, 99}, 2); err == nil {
		t.Fatal("want out-of-range error")
	}
	if _, _, err := InducedSubgraph(m, []edgelist.NodeID{1, 1}, 2); err == nil {
		t.Fatal("want duplicate error")
	}
	sub, mapping, err := InducedSubgraph(m, nil, 2)
	if err != nil || sub.NumNodes() != 0 || len(mapping) != 0 {
		t.Fatal("empty set should give empty subgraph")
	}
}

func TestInducedSubgraphMatchesFilter(t *testing.T) {
	l := randomSortedList(3000, 120, 60)
	m := Build(l, 120, 2)
	// Every third node.
	var set []edgelist.NodeID
	for u := uint32(0); u < 120; u += 3 {
		set = append(set, u)
	}
	inSet := map[uint32]uint32{}
	for i, u := range set {
		inSet[u] = uint32(i)
	}
	for _, p := range []int{1, 4} {
		sub, _, err := InducedSubgraph(m, set, p)
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for _, e := range l {
			if _, okU := inSet[e.U]; okU {
				if _, okV := inSet[e.V]; okV {
					want++
				}
			}
		}
		if sub.NumEdges() != want {
			t.Fatalf("p=%d: edges = %d, want %d", p, sub.NumEdges(), want)
		}
		for _, e := range l {
			nu, okU := inSet[e.U]
			nv, okV := inSet[e.V]
			if okU && okV && !sub.HasEdgeBinary(nu, nv) {
				t.Fatalf("p=%d: edge (%d,%d) lost", p, e.U, e.V)
			}
		}
	}
}
