// Package csr is the paper's core contribution: the Compressed Sparse Row
// graph representation (Section III) with parallel construction.
//
// A Matrix holds the two CSR arrays for an unweighted graph:
//
//   - iA (RowOffsets): n+1 row offsets — iA[u] is where node u's neighbors
//     start in jA and iA[u+1]-iA[u] is u's degree;
//   - jA (Cols): the m neighbor ids, concatenated row by row.
//
// (The paper's vA value array is omitted for unweighted graphs, as the paper
// does.) Construction from a source-sorted edge list is three parallel
// steps: the degree array (Algorithms 2-3), its prefix sum (Algorithm 1) to
// obtain iA, and the neighbor fill. Packed (packed.go) adds the bit-packed
// form of both arrays per Algorithm 4.
package csr

import (
	"fmt"
	"time"

	"csrgraph/internal/degree"
	"csrgraph/internal/edgelist"
	"csrgraph/internal/obs"
	"csrgraph/internal/parallel"
	"csrgraph/internal/prefixsum"
)

// Matrix is an uncompressed CSR adjacency structure.
type Matrix struct {
	// RowOffsets is iA: len NumNodes+1, RowOffsets[0] == 0,
	// RowOffsets[NumNodes] == NumEdges.
	RowOffsets []uint32
	// Cols is jA: the concatenated neighbor lists, len NumEdges. Within a
	// row, neighbors are ascending when the input edge list was sorted.
	Cols []uint32
}

// BuildSequential constructs a CSR from a source-sorted edge list on one
// processor; the reference for Build.
func BuildSequential(l edgelist.List, numNodes int) *Matrix {
	deg := degree.Sequential(l, numNodes)
	off := prefixsum.Offsets(deg, 1)
	cols := make([]uint32, len(l))
	for i, e := range l {
		cols[i] = e.V
	}
	return &Matrix{RowOffsets: off, Cols: cols}
}

// Build constructs a CSR from a source-sorted edge list using p processors:
// parallel degree computation, parallel prefix sum for the row offsets, and
// a parallel neighbor fill. Because the list is sorted by (u, v), the jA
// array is exactly the destination column of the list in order, so the fill
// is a contention-free per-chunk copy.
//
// With metrics enabled (internal/obs) each stage reports its wall time
// under csrgraph_build_stage_seconds, and the fill additionally reports its
// per-chunk imbalance; disabled, the only cost is one atomic load.
func Build(l edgelist.List, numNodes, p int) *Matrix {
	start := obs.Now()
	deg := degree.Parallel(l, numNodes, p)
	start = obs.Tick(stageDegree, start)
	off := prefixsum.Offsets(deg, p)
	start = obs.Tick(stageOffsets, start)
	cols := make([]uint32, len(l))
	if start.IsZero() {
		parallel.For(len(l), p, func(_ int, r parallel.Range) {
			for i := r.Start; i < r.End; i++ {
				cols[i] = l[i].V
			}
		})
	} else {
		// Metrics path: time each static chunk to surface fill imbalance.
		// Chunk indices are claimed exactly once, so the per-chunk slots
		// race-freely belong to their chunk.
		chunkNS := make([]int64, len(parallel.Chunks(len(l), p)))
		parallel.For(len(l), p, func(c int, r parallel.Range) {
			t0 := time.Now()
			for i := r.Start; i < r.End; i++ {
				cols[i] = l[i].V
			}
			chunkNS[c] = time.Since(t0).Nanoseconds()
		})
		fillImbalance.Set(obs.ImbalanceRatio(chunkNS))
		obs.Tick(stageFill, start)
	}
	return &Matrix{RowOffsets: off, Cols: cols}
}

// FromEdgeList sorts (in parallel), dedups and builds in one call, for
// callers starting from an arbitrary edge list. The sort+dedup front end
// runs fused over radix keys (edgelist.List.Prepared).
func FromEdgeList(l edgelist.List, p int) *Matrix {
	sorted := l.Prepared(false, p)
	return Build(sorted, sorted.NumNodes(), p)
}

// NumNodes returns the number of nodes.
func (m *Matrix) NumNodes() int {
	if len(m.RowOffsets) == 0 {
		return 0
	}
	return len(m.RowOffsets) - 1
}

// NumEdges returns the number of directed edges.
func (m *Matrix) NumEdges() int { return len(m.Cols) }

// Degree returns the out-degree of u.
func (m *Matrix) Degree(u edgelist.NodeID) int {
	return int(m.RowOffsets[u+1] - m.RowOffsets[u])
}

// Neighbors returns u's neighbor list as a subslice of the CSR column
// array; callers must not modify it.
func (m *Matrix) Neighbors(u edgelist.NodeID) []uint32 {
	return m.Cols[m.RowOffsets[u]:m.RowOffsets[u+1]]
}

// Row returns u's neighbors. For the plain matrix this is the Neighbors
// subslice (dst is ignored); it exists so Matrix and Packed satisfy the same
// query-engine interface.
func (m *Matrix) Row(dst []uint32, u edgelist.NodeID) []uint32 {
	return m.Neighbors(u)
}

// HasEdge reports whether the edge (u, v) exists, by linear scan of u's row
// (the paper's Algorithm 7 inner loop).
func (m *Matrix) HasEdge(u, v edgelist.NodeID) bool {
	for _, w := range m.Neighbors(u) {
		if w == v {
			return true
		}
	}
	return false
}

// HasEdgeBinary reports edge existence by binary search, valid when rows
// are sorted (the extension Section V-B suggests).
func (m *Matrix) HasEdgeBinary(u, v edgelist.NodeID) bool {
	row := m.Neighbors(u)
	lo, hi := 0, len(row)
	for lo < hi {
		mid := (lo + hi) / 2
		if row[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(row) && row[lo] == v
}

// RowBounds returns the [start, end) range of u's row in Cols — the same
// split geometry csr.Packed exposes, so the query engine's split-search
// path treats both forms uniformly.
func (m *Matrix) RowBounds(u edgelist.NodeID) (start, end int) {
	return int(m.RowOffsets[u]), int(m.RowOffsets[u+1])
}

// ColAt returns the neighbor stored at position i of Cols — the O(1)
// column access the frontier core's dense (pull) mode probes rows through
// (frontier.IndexedRows).
//
//csr:hotpath
func (m *Matrix) ColAt(i int) uint32 { return m.Cols[i] }

// SearchRow reports whether (u, v) exists by early-exit binary search over
// the sorted row: the search returns as soon as a probe hits v instead of
// always narrowing to a lower bound.
//
//csr:hotpath
func (m *Matrix) SearchRow(u, v edgelist.NodeID) bool {
	return m.SearchRange(int(m.RowOffsets[u]), int(m.RowOffsets[u+1]), v)
}

// SearchRange reports whether v occurs in the sorted Cols run [start, end)
// — one row or any subrange of it (Algorithm 8's per-processor unit).
//
//csr:hotpath
func (m *Matrix) SearchRange(start, end int, v edgelist.NodeID) bool {
	lo, hi := start, end
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		switch w := m.Cols[mid]; {
		case w < v:
			lo = mid + 1
		case w > v:
			hi = mid
		default:
			return true
		}
	}
	return false
}

// Edges reconstructs the sorted edge list the matrix encodes.
func (m *Matrix) Edges() edgelist.List {
	out := make(edgelist.List, 0, m.NumEdges())
	for u := 0; u < m.NumNodes(); u++ {
		for _, v := range m.Neighbors(uint32(u)) {
			out = append(out, edgelist.Edge{U: uint32(u), V: v})
		}
	}
	return out
}

// SizeBytes returns the uncompressed CSR footprint: 4 bytes per offset and
// per neighbor.
func (m *Matrix) SizeBytes() int64 {
	return int64(len(m.RowOffsets))*4 + int64(len(m.Cols))*4
}

// Validate checks the CSR structural invariants and returns the first
// violation: monotone offsets starting at 0 and ending at len(Cols), and
// all columns within the node range.
func (m *Matrix) Validate() error {
	n := m.NumNodes()
	if len(m.RowOffsets) == 0 {
		if len(m.Cols) != 0 {
			return fmt.Errorf("csr: empty offsets with %d cols", len(m.Cols))
		}
		return nil
	}
	if m.RowOffsets[0] != 0 {
		return fmt.Errorf("csr: RowOffsets[0] = %d, want 0", m.RowOffsets[0])
	}
	for i := 1; i <= n; i++ {
		if m.RowOffsets[i] < m.RowOffsets[i-1] {
			return fmt.Errorf("csr: RowOffsets[%d] = %d < RowOffsets[%d] = %d",
				i, m.RowOffsets[i], i-1, m.RowOffsets[i-1])
		}
	}
	if int(m.RowOffsets[n]) != len(m.Cols) {
		return fmt.Errorf("csr: RowOffsets[%d] = %d, want %d", n, m.RowOffsets[n], len(m.Cols))
	}
	for i, c := range m.Cols {
		if int(c) >= n {
			return fmt.Errorf("csr: Cols[%d] = %d out of range [0,%d)", i, c, n)
		}
	}
	return nil
}

// Equal reports whether two matrices encode the same graph structure.
func (m *Matrix) Equal(o *Matrix) bool {
	if len(m.RowOffsets) != len(o.RowOffsets) || len(m.Cols) != len(o.Cols) {
		return false
	}
	for i := range m.RowOffsets {
		if m.RowOffsets[i] != o.RowOffsets[i] {
			return false
		}
	}
	for i := range m.Cols {
		if m.Cols[i] != o.Cols[i] {
			return false
		}
	}
	return true
}
