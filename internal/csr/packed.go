package csr

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"csrgraph/internal/bitpack"
	"csrgraph/internal/edgelist"
	"csrgraph/internal/obs"
)

// Packed is the bit-packed CSR of Section III-A3: both the degree/offset
// array iA and the neighbor array jA are fixed-width bit-packed
// (Algorithm 4), shrinking the structure from 4 bytes per entry to
// ceil(log2(max+1)) bits per entry while keeping O(1) random access — the
// property the Section V querying algorithms need.
type Packed struct {
	off  *bitpack.Packed // iA: n+1 row offsets
	cols *bitpack.Packed // jA: m neighbor ids
}

// PackMatrix bit-packs a CSR using p processors, packing iA and jA
// independently as Algorithm 4 prescribes ("once for degree array iA, and
// once for edge column array jA"). The combined pack time is the pipeline's
// bitpack stage in csrgraph_build_stage_seconds.
func PackMatrix(m *Matrix, p int) *Packed {
	start := obs.Now()
	pk := &Packed{
		off:  bitpack.Pack(m.RowOffsets, p),
		cols: bitpack.Pack(m.Cols, p),
	}
	obs.Tick(stagePack, start)
	return pk
}

// BuildPacked constructs the bit-packed CSR straight from a source-sorted
// edge list with p processors: Build followed by PackMatrix.
func BuildPacked(l edgelist.List, numNodes, p int) *Packed {
	return PackMatrix(Build(l, numNodes, p), p)
}

// AssemblePacked wraps externally constructed iA/jA packed arrays — e.g.
// zero-copy views over a mapped container's sections — as a Packed. Only
// the offset invariants are validated (monotone from 0, ending exactly at
// the cols length): that is what query row decoding relies on to stay
// in-bounds, and it touches only the small iA section so a mapped
// multi-GB graph does not fault in its neighbor pages at load time. The
// neighbor-value range scan of the legacy reader is NOT run; callers
// serving untrusted files should add ValidateCols (or a container CRC
// check) before handing the graph to algorithms that index by neighbor id.
func AssemblePacked(off, cols *bitpack.Packed) (*Packed, error) {
	pk := &Packed{off: off, cols: cols}
	if err := pk.validateOffsets(); err != nil {
		return nil, err
	}
	return pk, nil
}

// Parts returns the two packed arrays (iA, jA) backing the CSR, for
// serializers that lay the raw sections out themselves. Read-only.
func (pk *Packed) Parts() (off, cols *bitpack.Packed) { return pk.off, pk.cols }

// NumNodes returns the number of nodes.
func (pk *Packed) NumNodes() int {
	if pk.off.Len() == 0 {
		return 0
	}
	return pk.off.Len() - 1
}

// NumEdges returns the number of directed edges.
func (pk *Packed) NumEdges() int { return pk.cols.Len() }

// NumBits returns the per-neighbor bit width — the `numBits` parameter the
// paper's query algorithms receive.
func (pk *Packed) NumBits() int { return pk.cols.Width() }

// OffsetBits returns the per-offset bit width of the packed iA array.
func (pk *Packed) OffsetBits() int { return pk.off.Width() }

// RowBounds returns the [start, end) range of u's row in the packed jA
// array (u's startingIndex and startingIndex+degree in the paper's terms).
func (pk *Packed) RowBounds(u edgelist.NodeID) (start, end int) {
	return int(pk.off.Get(int(u))), int(pk.off.Get(int(u) + 1))
}

// Degree returns the out-degree of u.
func (pk *Packed) Degree(u edgelist.NodeID) int {
	start, end := pk.RowBounds(u)
	return end - start
}

// Row decodes u's neighbor list into dst (grown as needed) and returns it.
// This is GetRowFromCSR from ref [28]: seek to the row's bit offset and
// decode degree-many numBits-wide values. The decode runs through the
// width-specialized bulk kernels in internal/bitarray (packed values are
// uint32, so the width is always in [1,32] and the kernel table covers
// every case).
func (pk *Packed) Row(dst []uint32, u edgelist.NodeID) []uint32 {
	start, end := pk.RowBounds(u)
	return pk.cols.Slice(dst, start, end-start)
}

// Neighbor returns the i-th neighbor of u without decoding the whole row.
// For widths dividing 64 the read is a single aligned word access (see
// bitpack.Packed.Get).
func (pk *Packed) Neighbor(u edgelist.NodeID, i int) uint32 {
	start, end := pk.RowBounds(u)
	if i < 0 || start+i >= end {
		panic(fmt.Sprintf("csr: neighbor %d of node %d out of range (degree %d)", i, u, end-start))
	}
	return pk.cols.Get(start + i)
}

// HasEdge reports whether (u, v) exists by a linear scan over the packed
// row — Algorithm 7/8's core loop, reading directly from the bit array.
func (pk *Packed) HasEdge(u, v edgelist.NodeID) bool {
	start, end := pk.RowBounds(u)
	for i := start; i < end; i++ {
		if pk.cols.Get(i) == v {
			return true
		}
	}
	return false
}

// HasEdgeBinary reports edge existence by binary search over the packed
// row, using O(log d) random accesses instead of decoding d values — the
// speed-up Section V-B mentions as an extension.
func (pk *Packed) HasEdgeBinary(u, v edgelist.NodeID) bool {
	start, end := pk.RowBounds(u)
	lo, hi := start, end
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if pk.cols.Get(mid) < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < end && pk.cols.Get(lo) == v
}

// ColAt returns the neighbor stored at position i of the packed jA array —
// one bitpack random access (a single aligned word load for widths dividing
// 64). It is the O(1) column access the frontier core's dense (pull) mode
// probes rows through (frontier.IndexedRows) without materializing them.
//
//csr:hotpath
func (pk *Packed) ColAt(i int) uint32 { return pk.cols.Get(i) }

// gallopMinDegree is the row length above which SearchRange switches from
// plain binary search to the galloping variant. Short rows fit in a cache
// line or two of packed bits, where binary search's fewer probes win; on
// hub rows galloping keeps early probes local to the row start and costs
// O(log answer-offset) when queries skew toward small neighbor ids.
const gallopMinDegree = 128

// SearchRow reports whether (u, v) exists by searching u's packed row in
// place — the query engine's zero-decode existence primitive. Every probe
// is one bitpack random access (single aligned word load for widths
// dividing 64), so no part of the row is ever materialized; hub rows use
// the galloping variant.
//
//csr:hotpath
func (pk *Packed) SearchRow(u, v edgelist.NodeID) bool {
	start, end := pk.RowBounds(u)
	return pk.SearchRange(start, end, v)
}

// SearchRange reports whether v occurs among the packed neighbors in
// positions [start, end) of jA, which must be a sorted run (any subrange
// of one row is). It is the split unit of Algorithm 8: EdgeExistsSplit
// hands each processor one subrange to search without decoding.
//
//csr:hotpath
func (pk *Packed) SearchRange(start, end int, v edgelist.NodeID) bool {
	var i int
	if end-start >= gallopMinDegree {
		i = pk.cols.GallopLowerBound(start, end, v)
	} else {
		i = pk.cols.LowerBound(start, end, v)
	}
	return i < end && pk.cols.Get(i) == v
}

// Unpack expands the packed CSR back into a plain Matrix.
func (pk *Packed) Unpack() *Matrix {
	return &Matrix{RowOffsets: pk.off.Unpack(), Cols: pk.cols.Unpack()}
}

// SizeBytes returns the bit-packed payload footprint — Table II's "CSR"
// size column.
func (pk *Packed) SizeBytes() int64 {
	return pk.off.SizeBytes() + pk.cols.SizeBytes()
}

// Equal reports whether two packed CSRs are bit-identical.
func (pk *Packed) Equal(o *Packed) bool {
	return pk.off.Equal(o.off) && pk.cols.Equal(o.cols)
}

const packedFileMagic = "PCSR"

// ContainerMagic is the magic of the mmap-able binary container format
// (internal/mgraph). The legacy stream readers in this package recognize it
// only to direct users to the right tool; mgraph owns the format.
const ContainerMagic = "CSRC"

// ErrContainerFile reports that a legacy stream reader was handed a binary
// container file — a format mismatch, not corruption.
var ErrContainerFile = errors.New("csr: file is a binary graph container, not the legacy stream format (open it with internal/mgraph, csrserver -mmap, or csrstats)")

// partStreamBuf is the chunk size WriteTo streams bitpack payloads through:
// big enough to amortize bufio copies, small enough to stay cache-resident.
const partStreamBuf = 32 << 10

// writePartStream writes one bitpack payload in the legacy stream framing
// (u64 payload length, then the bytes MarshalBinary would produce) without
// materializing the payload: the words are encoded little-endian through
// the caller's reused scratch buffer. Byte-for-byte identical to writing
// part.MarshalBinary.
func writePartStream(bw *bufio.Writer, part *bitpack.Packed, scratch []byte) (int64, error) {
	words := part.Bits().Words()
	payloadLen := (4 + 8 + 8) + (4 + 8 + 8*len(words)) // BPK1 header + BARR header + words
	var hdr [8 + 4 + 8 + 8 + 4 + 8]byte
	binary.LittleEndian.PutUint64(hdr[0:], uint64(payloadLen))
	copy(hdr[8:], "BPK1")
	binary.LittleEndian.PutUint64(hdr[12:], uint64(part.Width()))
	binary.LittleEndian.PutUint64(hdr[20:], uint64(part.Len()))
	copy(hdr[28:], "BARR")
	binary.LittleEndian.PutUint64(hdr[32:], uint64(part.Bits().Len()))
	written := int64(0)
	n, err := bw.Write(hdr[:])
	written += int64(n)
	if err != nil {
		return written, err
	}
	for len(words) > 0 {
		chunk := words
		if len(chunk) > len(scratch)/8 {
			chunk = chunk[:len(scratch)/8]
		}
		for i, w := range chunk {
			binary.LittleEndian.PutUint64(scratch[8*i:], w)
		}
		n, err := bw.Write(scratch[:8*len(chunk)])
		written += int64(n)
		if err != nil {
			return written, err
		}
		words = words[len(chunk):]
	}
	return written, nil
}

// WriteTo serializes the packed CSR: magic, two length-prefixed bitpack
// payloads. It implements io.WriterTo. The payloads are streamed through a
// reused chunk buffer — no full-array temporary is built, so writing a
// multi-GB graph costs O(1) extra memory.
func (pk *Packed) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var written int64
	n, err := bw.WriteString(packedFileMagic)
	written += int64(n)
	if err != nil {
		return written, err
	}
	scratch := make([]byte, partStreamBuf)
	for _, part := range []*bitpack.Packed{pk.off, pk.cols} {
		m, err := writePartStream(bw, part, scratch)
		written += m
		if err != nil {
			return written, err
		}
	}
	return written, bw.Flush()
}

// ReadPacked deserializes a packed CSR written by WriteTo. It reads exactly
// the serialized bytes and no more, so multiple packed CSRs can be read
// back-to-back from one stream (the temporal format relies on this).
func ReadPacked(r io.Reader) (*Packed, error) {
	br := r
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("csr: packed header: %w", err)
	}
	if string(magic) == ContainerMagic {
		return nil, ErrContainerFile
	}
	if string(magic) != packedFileMagic {
		return nil, fmt.Errorf("csr: bad magic %q", magic)
	}
	parts := make([]*bitpack.Packed, 2)
	for i := range parts {
		var hdr [8]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return nil, fmt.Errorf("csr: part %d length: %w", i, err)
		}
		size := binary.LittleEndian.Uint64(hdr[:])
		const maxPart = 1 << 36
		if size > maxPart {
			return nil, fmt.Errorf("csr: implausible part size %d", size)
		}
		// The size comes from an untrusted header: copy incrementally so a
		// lying header on a short stream errors out instead of provoking a
		// giant up-front allocation.
		var payload bytes.Buffer
		payload.Grow(int(min(size, 1<<20)))
		if _, err := io.CopyN(&payload, br, int64(size)); err != nil {
			return nil, fmt.Errorf("csr: part %d payload: %w", i, err)
		}
		parts[i] = new(bitpack.Packed)
		if err := parts[i].UnmarshalBinary(payload.Bytes()); err != nil {
			return nil, fmt.Errorf("csr: part %d: %w", i, err)
		}
	}
	pk := &Packed{off: parts[0], cols: parts[1]}
	if err := pk.validate(); err != nil {
		return nil, err
	}
	return pk, nil
}

// validate checks the structural invariants a freshly deserialized packed
// CSR must satisfy before queries may trust it: offsets start at 0, are
// monotone, end exactly at the cols length, and every neighbor id is
// inside the node space. Without this a corrupt file would panic at query
// time instead of failing at load time.
func (pk *Packed) validate() error {
	if err := pk.validateOffsets(); err != nil {
		return err
	}
	return pk.ValidateCols()
}

// validateOffsets checks the iA invariants row decoding depends on —
// offsets start at 0, never decrease, and end exactly at the cols length —
// touching only the offsets array. This is the load-time check of the
// mmap path: O(numNodes), no neighbor pages faulted in.
func (pk *Packed) validateOffsets() error {
	n := pk.off.Len()
	if n == 0 {
		if pk.cols.Len() != 0 {
			return fmt.Errorf("csr: empty offsets with %d cols", pk.cols.Len())
		}
		return nil
	}
	prev := pk.off.Get(0)
	if prev != 0 {
		return fmt.Errorf("csr: first offset %d, want 0", prev)
	}
	for i := 1; i < n; i++ {
		cur := pk.off.Get(i)
		if cur < prev {
			return fmt.Errorf("csr: offsets decrease at %d (%d < %d)", i, cur, prev)
		}
		prev = cur
	}
	if got, want := pk.cols.Len(), int(prev); got != want {
		return fmt.Errorf("csr: offsets claim %d edges, cols has %d", want, got)
	}
	return nil
}

// ValidateCols scans the full jA array checking every neighbor id is
// inside the node space — the O(numEdges) half of validation, needed
// before graph algorithms may index per-node state by neighbor values.
// Mapped loads skip it by default (it faults in every neighbor page) and
// callers opt in for untrusted files.
func (pk *Packed) ValidateCols() error {
	if pk.off.Len() == 0 {
		return nil
	}
	return pk.ValidateColsBound(uint32(pk.off.Len() - 1))
}

// ValidateColsBound is ValidateCols against an explicit node space. Shard
// containers need it: their rows are local but their neighbor values are
// GLOBAL ids, so the valid bound is the whole graph's node count, not the
// shard's row count.
func (pk *Packed) ValidateColsBound(numNodes uint32) error {
	for i := 0; i < pk.cols.Len(); i++ {
		if v := pk.cols.Get(i); v >= numNodes {
			return fmt.Errorf("csr: neighbor %d at position %d outside node space %d", v, i, numNodes)
		}
	}
	return nil
}

// SaveFile writes the packed CSR to path.
func (pk *Packed) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	_, werr := pk.WriteTo(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// LoadPackedFile reads a packed CSR from path.
func LoadPackedFile(path string) (*Packed, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadPacked(f)
}
