package csr

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"csrgraph/internal/edgelist"
)

// paperGraph returns the 10-node graph of the paper's Table I as a sorted
// edge list.
func paperGraph() edgelist.List {
	l := edgelist.List{
		{U: 0, V: 5}, {U: 1, V: 6}, {U: 1, V: 7}, {U: 2, V: 7}, {U: 3, V: 8},
		{U: 3, V: 9}, {U: 4, V: 9}, {U: 5, V: 0}, {U: 6, V: 1}, {U: 7, V: 1},
		{U: 7, V: 2}, {U: 8, V: 2}, {U: 8, V: 3}, {U: 9, V: 3},
	}
	return l
}

func randomSortedList(n int, maxNode uint32, seed int64) edgelist.List {
	rng := rand.New(rand.NewSource(seed))
	l := make(edgelist.List, n)
	for i := range l {
		l[i] = edgelist.Edge{U: rng.Uint32() % maxNode, V: rng.Uint32() % maxNode}
	}
	l.SortByUV(1)
	return l.Dedup()
}

func TestBuildPaperTableI(t *testing.T) {
	m := BuildSequential(paperGraph(), 10)
	wantOff := []uint32{0, 1, 3, 4, 6, 7, 8, 9, 11, 13, 14}
	wantCols := []uint32{5, 6, 7, 7, 8, 9, 9, 0, 1, 1, 2, 2, 3, 3}
	if !reflect.DeepEqual(m.RowOffsets, wantOff) {
		t.Fatalf("RowOffsets = %v, want %v", m.RowOffsets, wantOff)
	}
	if !reflect.DeepEqual(m.Cols, wantCols) {
		t.Fatalf("Cols = %v, want %v", m.Cols, wantCols)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.NumNodes() != 10 || m.NumEdges() != 14 {
		t.Fatalf("n=%d m=%d", m.NumNodes(), m.NumEdges())
	}
}

func TestParallelBuildMatchesSequential(t *testing.T) {
	for _, n := range []int{0, 1, 2, 100, 5000} {
		l := randomSortedList(n, 200, int64(n))
		want := BuildSequential(l, 200)
		for _, p := range []int{1, 2, 3, 4, 16, 64} {
			got := Build(l, 200, p)
			if !got.Equal(want) {
				t.Fatalf("n=%d p=%d: parallel build diverges", n, p)
			}
		}
	}
}

func TestFromEdgeListUnsorted(t *testing.T) {
	l := edgelist.List{{U: 3, V: 1}, {U: 0, V: 2}, {U: 3, V: 1}, {U: 1, V: 0}}
	m := FromEdgeList(l, 2)
	if m.NumNodes() != 4 || m.NumEdges() != 3 {
		t.Fatalf("n=%d m=%d, want 4, 3", m.NumNodes(), m.NumEdges())
	}
	if !m.HasEdge(3, 1) || !m.HasEdge(0, 2) || !m.HasEdge(1, 0) || m.HasEdge(1, 2) {
		t.Fatal("edge membership wrong after FromEdgeList")
	}
	// Input must not have been reordered in place.
	if l[0] != (edgelist.Edge{U: 3, V: 1}) {
		t.Fatal("FromEdgeList mutated its input")
	}
}

func TestNeighborsAndDegree(t *testing.T) {
	m := BuildSequential(paperGraph(), 10)
	if got := m.Neighbors(7); !reflect.DeepEqual(got, []uint32{1, 2}) {
		t.Fatalf("Neighbors(7) = %v", got)
	}
	if m.Degree(7) != 2 || m.Degree(0) != 1 {
		t.Fatalf("degrees wrong: %d, %d", m.Degree(7), m.Degree(0))
	}
	if len(m.Neighbors(4)) != 1 {
		t.Fatalf("Neighbors(4) = %v", m.Neighbors(4))
	}
}

func TestHasEdgeVariantsAgree(t *testing.T) {
	l := randomSortedList(3000, 150, 9)
	m := Build(l, 150, 4)
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 2000; i++ {
		u, v := rng.Uint32()%150, rng.Uint32()%150
		lin := m.HasEdge(u, v)
		bin := m.HasEdgeBinary(u, v)
		if lin != bin {
			t.Fatalf("HasEdge(%d,%d)=%v but HasEdgeBinary=%v", u, v, lin, bin)
		}
	}
	// Every input edge must exist.
	for _, e := range l {
		if !m.HasEdge(e.U, e.V) || !m.HasEdgeBinary(e.U, e.V) {
			t.Fatalf("input edge (%d,%d) missing", e.U, e.V)
		}
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	l := randomSortedList(500, 64, 11)
	m := Build(l, 64, 3)
	if !reflect.DeepEqual(m.Edges(), l) {
		t.Fatal("Edges() does not reproduce the input list")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	good := BuildSequential(paperGraph(), 10)
	cases := map[string]func(m *Matrix){
		"nonzero first offset": func(m *Matrix) { m.RowOffsets[0] = 1 },
		"decreasing offsets":   func(m *Matrix) { m.RowOffsets[5] = 0 },
		"wrong total":          func(m *Matrix) { m.RowOffsets[10] = 99 },
		"col out of range":     func(m *Matrix) { m.Cols[0] = 10 },
	}
	for name, corrupt := range cases {
		m := &Matrix{
			RowOffsets: append([]uint32{}, good.RowOffsets...),
			Cols:       append([]uint32{}, good.Cols...),
		}
		corrupt(m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: Validate accepted corrupt matrix", name)
		}
	}
	empty := &Matrix{}
	if err := empty.Validate(); err != nil {
		t.Errorf("empty matrix should validate: %v", err)
	}
}

func TestSizeBytes(t *testing.T) {
	m := BuildSequential(paperGraph(), 10)
	if got := m.SizeBytes(); got != int64(11*4+14*4) {
		t.Fatalf("SizeBytes = %d", got)
	}
}

// Property: building from any sorted dedup'd list preserves exact adjacency
// for every node, for any p.
func TestQuickBuildAdjacency(t *testing.T) {
	f := func(pairs []uint16, p uint8) bool {
		l := make(edgelist.List, 0, len(pairs)/2)
		for i := 0; i+1 < len(pairs); i += 2 {
			l = append(l, edgelist.Edge{U: uint32(pairs[i]) % 32, V: uint32(pairs[i+1]) % 32})
		}
		l.SortByUV(1)
		l = l.Dedup()
		m := Build(l, 32, int(p))
		if m.Validate() != nil {
			return false
		}
		adj := make(map[edgelist.Edge]bool, len(l))
		for _, e := range l {
			adj[e] = true
		}
		if m.NumEdges() != len(adj) {
			return false
		}
		for u := uint32(0); u < 32; u++ {
			for _, v := range m.Neighbors(u) {
				if !adj[edgelist.Edge{U: u, V: v}] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
