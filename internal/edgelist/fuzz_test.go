package edgelist

import (
	"bytes"
	"strings"
	"testing"
)

// The text and binary readers consume untrusted files; they must return
// errors — never panic — on arbitrary input, and accepted input must
// round-trip.

func FuzzReadText(f *testing.F) {
	f.Add("0 1\n2 3\n")
	f.Add("# comment\n\n10\t20\n")
	f.Add("a b\n")
	f.Add("4294967295 0\n")
	f.Add("-1 5\n")
	f.Fuzz(func(t *testing.T, input string) {
		l, err := ReadText(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if werr := l.WriteText(&buf); werr != nil {
			t.Fatalf("write of accepted input failed: %v", werr)
		}
		back, rerr := ReadText(&buf)
		if rerr != nil {
			t.Fatalf("reparse of own output failed: %v", rerr)
		}
		if len(back) != len(l) {
			t.Fatalf("round trip changed edge count: %d -> %d", len(l), len(back))
		}
	})
}

func FuzzReadBinary(f *testing.F) {
	good, _ := func() ([]byte, error) {
		var buf bytes.Buffer
		err := (List{{U: 1, V: 2}}).WriteBinary(&buf)
		return buf.Bytes(), err
	}()
	f.Add(good)
	f.Add([]byte("CSEL"))
	f.Add([]byte("CSEL\xff\xff\xff\xff\xff\xff\xff\xff"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		l, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if werr := l.WriteBinary(&buf); werr != nil {
			t.Fatal(werr)
		}
		back, rerr := ReadBinary(&buf)
		if rerr != nil || len(back) != len(l) {
			t.Fatalf("round trip failed: %v", rerr)
		}
	})
}

func FuzzReadTemporalText(f *testing.F) {
	f.Add("0 1 0\n1 2 3\n")
	f.Add("0 1\n")
	f.Fuzz(func(t *testing.T, input string) {
		l, err := ReadTemporalText(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if werr := l.WriteText(&buf); werr != nil {
			t.Fatal(werr)
		}
		back, rerr := ReadTemporalText(&buf)
		if rerr != nil || len(back) != len(l) {
			t.Fatalf("round trip failed: %v", rerr)
		}
	})
}
