package edgelist

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestReadMETISBasic(t *testing.T) {
	// The classic METIS example: 4 nodes, 4 undirected edges.
	const in = `% a comment
4 4
2 3
1 3
1 2 4
3
`
	l, n, err := ReadMETIS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("n = %d", n)
	}
	want := List{
		{U: 0, V: 1}, {U: 0, V: 2},
		{U: 1, V: 0}, {U: 1, V: 2},
		{U: 2, V: 0}, {U: 2, V: 1}, {U: 2, V: 3},
		{U: 3, V: 2},
	}
	if !reflect.DeepEqual(l, want) {
		t.Fatalf("got %v, want %v", l, want)
	}
}

func TestReadMETISEmptyAdjacencyLines(t *testing.T) {
	const in = "3 1\n2\n1\n\n"
	l, n, err := ReadMETIS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || len(l) != 2 {
		t.Fatalf("n=%d edges=%v", n, l)
	}
}

func TestReadMETISErrors(t *testing.T) {
	for name, in := range map[string]string{
		"missing header":    "",
		"bad header":        "x y\n",
		"one field header":  "4\n",
		"weighted":          "2 1 011\n2\n1\n",
		"neighbor zero":     "2 1\n0\n1\n",
		"neighbor too big":  "2 1\n3\n1\n",
		"edge count wrong":  "2 5\n2\n1\n",
		"too many rows":     "1 0\n\n\n",
		"garbage neighbor":  "2 1\nxx\n1\n",
		"negative header n": "-1 0\n",
	} {
		if _, _, err := ReadMETIS(strings.NewReader(in)); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func TestMETISRoundTrip(t *testing.T) {
	l := List{{U: 0, V: 1}, {U: 1, V: 0}, {U: 1, V: 2}, {U: 2, V: 1}}
	var buf bytes.Buffer
	if err := l.WriteMETIS(&buf, 3); err != nil {
		t.Fatal(err)
	}
	got, n, err := ReadMETIS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || !reflect.DeepEqual(got, l) {
		t.Fatalf("round trip: n=%d got %v", n, got)
	}
}

func TestWriteMETISValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := (List{{U: 0, V: 0}}).WriteMETIS(&buf, 1); err == nil {
		t.Fatal("want self-loop error")
	}
	if err := (List{{U: 0, V: 1}}).WriteMETIS(&buf, 2); err == nil {
		t.Fatal("want asymmetry error")
	}
	if err := (List{{U: 0, V: 5}, {U: 5, V: 0}}).WriteMETIS(&buf, 2); err == nil {
		t.Fatal("want out-of-range error")
	}
}

func TestMETISRandomSymmetricRoundTrip(t *testing.T) {
	raw := randomList(400, 50, 5)
	sym := raw.Symmetrize()
	sym.SortByUV(1)
	sym = sym.Dedup()
	// Remove self loops for METIS.
	clean := sym[:0]
	for _, e := range sym {
		if e.U != e.V {
			clean = append(clean, e)
		}
	}
	var buf bytes.Buffer
	if err := clean.WriteMETIS(&buf, 50); err != nil {
		t.Fatal(err)
	}
	got, n, err := ReadMETIS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 50 || !reflect.DeepEqual(got, clean) {
		t.Fatal("random symmetric round trip mismatch")
	}
}
