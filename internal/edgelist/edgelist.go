// Package edgelist provides the edge-list input representation the paper's
// construction algorithms consume: a flat list of (u, v) pairs, sorted by
// source then destination, plus the temporal (u, v, t) triples of Section IV.
//
// The parallel degree computation (Algorithms 2-3) requires the list to be
// sorted by source node so that each node's edges form one consecutive run;
// SortByUV establishes that invariant, in parallel when asked.
package edgelist

import (
	"fmt"
	"sort"

	"csrgraph/internal/parallel"
)

// NodeID identifies a vertex. The paper's graphs top out under 2^32 nodes.
type NodeID = uint32

// Edge is a directed edge from U to V.
type Edge struct {
	U, V NodeID
}

// Less orders edges by source, then destination.
func (e Edge) Less(o Edge) bool {
	if e.U != o.U {
		return e.U < o.U
	}
	return e.V < o.V
}

// List is a sequence of directed edges.
type List []Edge

// Len returns the number of edges.
func (l List) Len() int { return len(l) }

// MaxNode returns the largest node id referenced, or 0 for an empty list.
func (l List) MaxNode() NodeID {
	var max NodeID
	for _, e := range l {
		if e.U > max {
			max = e.U
		}
		if e.V > max {
			max = e.V
		}
	}
	return max
}

// NumNodes returns MaxNode+1, the dense node-id space size, or 0 when empty.
func (l List) NumNodes() int {
	if len(l) == 0 {
		return 0
	}
	return int(l.MaxNode()) + 1
}

// IsSortedByUV reports whether the list is sorted by (U, V).
func (l List) IsSortedByUV() bool {
	return sort.SliceIsSorted(l, func(i, j int) bool { return l[i].Less(l[j]) })
}

// SortByUV sorts the list by (U, V) in place using p processors, via the
// parallel LSD radix sort over packed (u<<32 | v) keys (internal/radix).
// See Prepared for the fused sort+dedup(+symmetrize) construction path.
func (l List) SortByUV(p int) {
	sortEdgesRadix(l, p)
}

// SortByUVMerge is the retained comparison-sort baseline: per-chunk
// sort.Slice followed by pairwise parallel merges. It is kept (like
// bitarray's unpackGeneric) as the differential-test reference and the
// benchmark baseline the radix path is measured against.
func (l List) SortByUVMerge(p int) {
	parallelSort(l, p, func(a, b Edge) bool { return a.Less(b) })
}

// Dedup removes consecutive duplicate edges from a sorted list by in-place
// compaction and returns the shortened list as a sub-slice of l — no
// second edge list is allocated. The result aliases l's backing array, and
// l's elements beyond the returned length are left in an unspecified
// order; callers that need the original list intact must Clone first.
func (l List) Dedup() List {
	if len(l) == 0 {
		return l
	}
	w := 1
	for i := 1; i < len(l); i++ {
		if l[i] != l[w-1] {
			l[w] = l[i]
			w++
		}
	}
	return l[:w]
}

// Symmetrize returns a new list containing every edge and its reverse,
// excluding self-loop duplicates. The result is unsorted.
func (l List) Symmetrize() List {
	out := make(List, 0, 2*len(l))
	for _, e := range l {
		out = append(out, e)
		if e.U != e.V {
			out = append(out, Edge{e.V, e.U})
		}
	}
	return out
}

// Clone returns a deep copy of the list.
func (l List) Clone() List {
	out := make(List, len(l))
	copy(out, l)
	return out
}

// SizeBytes returns the in-memory footprint of the raw edge list: two 4-byte
// ids per edge.
func (l List) SizeBytes() int64 { return int64(len(l)) * 8 }

// TextSizeBytes returns the size of the list in SNAP text format ("u\tv\n"
// per edge) without materializing it. Table II's "EdgeList Size" column
// reports the SNAP text files, so this is the paper's accounting.
func (l List) TextSizeBytes() int64 {
	var total int64
	for _, e := range l {
		total += int64(decimalLen(e.U) + decimalLen(e.V) + 2)
	}
	return total
}

func decimalLen(v uint32) int {
	n := 1
	for v >= 10 {
		v /= 10
		n++
	}
	return n
}

// Validate checks structural sanity: node ids below limit (0 disables the
// check). It returns the first problem found.
func (l List) Validate(limit int) error {
	if limit <= 0 {
		return nil
	}
	for i, e := range l {
		if int(e.U) >= limit || int(e.V) >= limit {
			return fmt.Errorf("edgelist: edge %d (%d,%d) exceeds node limit %d", i, e.U, e.V, limit)
		}
	}
	return nil
}

// Timestamp is a time-frame index in a temporal stream.
type Timestamp = uint32

// TemporalEdge is the ordered triple (u, v, t) of Section IV: edge (u, v)
// changes state (appears or disappears) at time-frame t.
type TemporalEdge struct {
	U, V NodeID
	T    Timestamp
}

// TemporalList is a sequence of temporal edge events. Section IV assumes it
// is sorted by time-frame, then by node numbers within each frame.
type TemporalList []TemporalEdge

// Len returns the number of events.
func (l TemporalList) Len() int { return len(l) }

// less orders by (T, U, V).
func (e TemporalEdge) less(o TemporalEdge) bool {
	if e.T != o.T {
		return e.T < o.T
	}
	if e.U != o.U {
		return e.U < o.U
	}
	return e.V < o.V
}

// IsSorted reports whether the list follows Section IV's (T, U, V) order.
func (l TemporalList) IsSorted() bool {
	return sort.SliceIsSorted(l, func(i, j int) bool { return l[i].less(l[j]) })
}

// Sort establishes the (T, U, V) order in place using p processors, via
// the 128-bit key-tuple radix sort (internal/radix).
func (l TemporalList) Sort(p int) {
	sortTemporalRadix(l, p)
}

// SortMerge is the retained comparison-sort baseline for temporal lists;
// see SortByUVMerge.
func (l TemporalList) SortMerge(p int) {
	parallelSort(l, p, func(a, b TemporalEdge) bool { return a.less(b) })
}

// NumFrames returns maxT+1 for a non-empty sorted list, else 0.
func (l TemporalList) NumFrames() int {
	if len(l) == 0 {
		return 0
	}
	var max Timestamp
	for _, e := range l {
		if e.T > max {
			max = e.T
		}
	}
	return int(max) + 1
}

// MaxNode returns the largest node id referenced.
func (l TemporalList) MaxNode() NodeID {
	var max NodeID
	for _, e := range l {
		if e.U > max {
			max = e.U
		}
		if e.V > max {
			max = e.V
		}
	}
	return max
}

// Frame returns the subslice of events with time-frame t. The list must be
// sorted.
func (l TemporalList) Frame(t Timestamp) TemporalList {
	lo := sort.Search(len(l), func(i int) bool { return l[i].T >= t })
	hi := sort.Search(len(l), func(i int) bool { return l[i].T > t })
	return l[lo:hi]
}

// SizeBytes returns the in-memory footprint: two 4-byte ids plus a 4-byte
// timestamp per event.
func (l TemporalList) SizeBytes() int64 { return int64(len(l)) * 12 }

// parallelSort sorts xs with p processors: sort chunks independently, then
// iteratively merge neighbouring chunk pairs until one run remains.
func parallelSort[T any](xs []T, p int, less func(a, b T) bool) {
	chunks := parallel.Chunks(len(xs), p)
	if len(chunks) <= 1 {
		sort.Slice(xs, func(i, j int) bool { return less(xs[i], xs[j]) })
		return
	}
	parallel.For(len(xs), len(chunks), func(_ int, r parallel.Range) {
		part := xs[r.Start:r.End]
		sort.Slice(part, func(i, j int) bool { return less(part[i], part[j]) })
	})
	// Pairwise merge rounds; each round halves the number of sorted runs.
	runs := chunks
	buf := make([]T, len(xs))
	for len(runs) > 1 {
		next := make([]parallel.Range, 0, (len(runs)+1)/2)
		type job struct{ a, b parallel.Range }
		jobs := make([]job, 0, len(runs)/2)
		for i := 0; i+1 < len(runs); i += 2 {
			jobs = append(jobs, job{runs[i], runs[i+1]})
			next = append(next, parallel.Range{Start: runs[i].Start, End: runs[i+1].End})
		}
		if len(runs)%2 == 1 {
			next = append(next, runs[len(runs)-1])
		}
		parallel.ForEach(len(jobs), len(jobs), func(j int) {
			a, b := jobs[j].a, jobs[j].b
			merge(xs, buf, a, b, less)
		})
		runs = next
	}
}

// merge merges the two adjacent sorted ranges a and b of xs via buf.
func merge[T any](xs, buf []T, a, b parallel.Range, less func(x, y T) bool) {
	i, j, k := a.Start, b.Start, a.Start
	for i < a.End && j < b.End {
		if less(xs[j], xs[i]) {
			buf[k] = xs[j]
			j++
		} else {
			buf[k] = xs[i]
			i++
		}
		k++
	}
	copy(buf[k:], xs[i:a.End])
	k += a.End - i
	copy(buf[k:], xs[j:b.End])
	copy(xs[a.Start:b.End], buf[a.Start:b.End])
}
