package edgelist

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func randomList(n int, maxNode uint32, seed int64) List {
	rng := rand.New(rand.NewSource(seed))
	out := make(List, n)
	for i := range out {
		out[i] = Edge{rng.Uint32() % maxNode, rng.Uint32() % maxNode}
	}
	return out
}

func TestEdgeLess(t *testing.T) {
	cases := []struct {
		a, b Edge
		want bool
	}{
		{Edge{1, 2}, Edge{1, 3}, true},
		{Edge{1, 3}, Edge{1, 2}, false},
		{Edge{1, 9}, Edge{2, 0}, true},
		{Edge{2, 0}, Edge{1, 9}, false},
		{Edge{1, 2}, Edge{1, 2}, false},
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.want {
			t.Errorf("(%v).Less(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestSortByUVMatchesStdlib(t *testing.T) {
	for _, p := range []int{1, 2, 3, 8, 17} {
		l := randomList(5000, 100, int64(p))
		want := l.Clone()
		sort.Slice(want, func(i, j int) bool { return want[i].Less(want[j]) })
		l.SortByUV(p)
		if !reflect.DeepEqual(l, want) {
			t.Fatalf("p=%d: parallel sort diverges from stdlib sort", p)
		}
		if !l.IsSortedByUV() {
			t.Fatalf("p=%d: IsSortedByUV false after sort", p)
		}
	}
}

func TestQuickSortByUV(t *testing.T) {
	f := func(pairs []uint32, p uint8) bool {
		l := make(List, 0, len(pairs)/2)
		for i := 0; i+1 < len(pairs); i += 2 {
			l = append(l, Edge{pairs[i] % 64, pairs[i+1] % 64})
		}
		want := l.Clone()
		sort.Slice(want, func(i, j int) bool { return want[i].Less(want[j]) })
		l.SortByUV(int(p))
		return reflect.DeepEqual(l, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDedup(t *testing.T) {
	l := List{{0, 1}, {0, 1}, {0, 2}, {1, 0}, {1, 0}, {1, 0}, {2, 2}}
	got := l.Dedup()
	want := List{{0, 1}, {0, 2}, {1, 0}, {2, 2}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Dedup = %v, want %v", got, want)
	}
	if len(List{}.Dedup()) != 0 {
		t.Fatal("Dedup of empty list should be empty")
	}
}

func TestSymmetrize(t *testing.T) {
	l := List{{0, 1}, {2, 2}}
	got := l.Symmetrize()
	want := List{{0, 1}, {1, 0}, {2, 2}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Symmetrize = %v, want %v", got, want)
	}
}

func TestMaxNodeAndNumNodes(t *testing.T) {
	l := List{{3, 9}, {0, 2}}
	if l.MaxNode() != 9 || l.NumNodes() != 10 {
		t.Fatalf("MaxNode=%d NumNodes=%d", l.MaxNode(), l.NumNodes())
	}
	if (List{}).NumNodes() != 0 {
		t.Fatal("empty NumNodes should be 0")
	}
}

func TestValidate(t *testing.T) {
	l := List{{0, 1}, {5, 2}}
	if err := l.Validate(6); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if err := l.Validate(5); err == nil {
		t.Fatal("want error for node 5 with limit 5")
	}
	if err := l.Validate(0); err != nil {
		t.Fatal("limit 0 must disable checking")
	}
}

func TestSizeBytes(t *testing.T) {
	if got := (make(List, 10)).SizeBytes(); got != 80 {
		t.Fatalf("List SizeBytes = %d, want 80", got)
	}
	if got := (make(TemporalList, 10)).SizeBytes(); got != 120 {
		t.Fatalf("TemporalList SizeBytes = %d, want 120", got)
	}
}

func TestTemporalSortAndFrame(t *testing.T) {
	l := TemporalList{
		{2, 3, 1}, {0, 1, 0}, {1, 2, 1}, {0, 2, 0}, {4, 0, 2},
	}
	l.Sort(3)
	if !l.IsSorted() {
		t.Fatal("not sorted")
	}
	want := TemporalList{{0, 1, 0}, {0, 2, 0}, {1, 2, 1}, {2, 3, 1}, {4, 0, 2}}
	if !reflect.DeepEqual(l, want) {
		t.Fatalf("sorted = %v, want %v", l, want)
	}
	if l.NumFrames() != 3 {
		t.Fatalf("NumFrames = %d, want 3", l.NumFrames())
	}
	f1 := l.Frame(1)
	if !reflect.DeepEqual(f1, TemporalList{{1, 2, 1}, {2, 3, 1}}) {
		t.Fatalf("Frame(1) = %v", f1)
	}
	if len(l.Frame(9)) != 0 {
		t.Fatal("Frame past end should be empty")
	}
	if l.MaxNode() != 4 {
		t.Fatalf("MaxNode = %d", l.MaxNode())
	}
}
