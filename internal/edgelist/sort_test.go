package edgelist

import (
	"math"
	"slices"
	"sort"
	"testing"
)

// sortCases enumerates the ISSUE's differential edge cases: empty, single
// edge, all-equal, ids near MaxUint32, already-sorted and reverse-sorted,
// plus random lists with duplicates and self-loops.
func sortCases() map[string]List {
	s := uint64(0x6a09e667f3bcc909)
	next := func() uint32 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return uint32(s >> 32)
	}
	cases := map[string]List{
		"empty":     {},
		"single":    {{U: 3, V: 1}},
		"all-equal": {{U: 9, V: 9}, {U: 9, V: 9}, {U: 9, V: 9}, {U: 9, V: 9}},
		"near-max": {
			{U: math.MaxUint32, V: math.MaxUint32},
			{U: math.MaxUint32 - 1, V: math.MaxUint32},
			{U: math.MaxUint32, V: 0},
			{U: 0, V: math.MaxUint32},
		},
	}
	random := make(List, 5000)
	for i := range random {
		random[i] = Edge{U: next() % 300, V: next() % 300}
	}
	cases["random-dups"] = random

	wide := make(List, 3000)
	for i := range wide {
		wide[i] = Edge{U: next(), V: next()}
	}
	cases["random-full-ids"] = wide

	asc := make(List, 2000)
	for i := range asc {
		asc[i] = Edge{U: uint32(i / 4), V: uint32(i % 4)}
	}
	cases["already-sorted"] = asc

	desc := slices.Clone(asc)
	slices.Reverse(desc)
	cases["reverse-sorted"] = desc
	return cases
}

// TestSortByUVDifferential checks the radix path against both the stdlib
// sort and the retained merge-sort baseline.
func TestSortByUVDifferential(t *testing.T) {
	for name, l := range sortCases() {
		want := slices.Clone(l)
		sort.Slice(want, func(i, j int) bool { return want[i].Less(want[j]) })
		for _, p := range []int{1, 2, 7} {
			radixed := slices.Clone(l)
			radixed.SortByUV(p)
			if !slices.Equal(radixed, want) {
				t.Errorf("%s p=%d: SortByUV disagrees with sort.Slice", name, p)
			}
			merged := slices.Clone(l)
			merged.SortByUVMerge(p)
			if !slices.Equal(merged, want) {
				t.Errorf("%s p=%d: SortByUVMerge disagrees with sort.Slice", name, p)
			}
		}
	}
}

// preparedReference is the unfused pipeline Prepared replaces.
func preparedReference(l List, symmetrize bool) List {
	if symmetrize {
		l = l.Symmetrize()
	} else {
		l = l.Clone()
	}
	sort.Slice(l, func(i, j int) bool { return l[i].Less(l[j]) })
	return l.Dedup()
}

func TestPreparedMatchesUnfusedPipeline(t *testing.T) {
	for name, l := range sortCases() {
		for _, symmetrize := range []bool{false, true} {
			want := preparedReference(slices.Clone(l), symmetrize)
			if len(want) == 0 {
				want = List{}
			}
			for _, p := range []int{1, 4} {
				orig := slices.Clone(l)
				got := orig.Prepared(symmetrize, p)
				if !slices.Equal(got, want) {
					t.Errorf("%s sym=%v p=%d: Prepared disagrees with symmetrize+sort+dedup", name, symmetrize, p)
				}
				if !slices.Equal(orig, l) {
					t.Errorf("%s sym=%v p=%d: Prepared modified its receiver", name, symmetrize, p)
				}
			}
		}
	}
}

func TestDedupInPlace(t *testing.T) {
	l := List{{U: 1, V: 1}, {U: 1, V: 1}, {U: 2, V: 0}, {U: 2, V: 0}, {U: 2, V: 1}}
	got := l.Dedup()
	want := List{{U: 1, V: 1}, {U: 2, V: 0}, {U: 2, V: 1}}
	if !slices.Equal(got, want) {
		t.Fatalf("Dedup = %v, want %v", got, want)
	}
	// The compacted result must alias the receiver's backing array.
	if &got[0] != &l[0] {
		t.Error("Dedup allocated a new backing array")
	}
}

func temporalSortCases() map[string]TemporalList {
	s := uint64(0xbb67ae8584caa73b)
	next := func() uint32 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return uint32(s >> 32)
	}
	cases := map[string]TemporalList{
		"empty":  {},
		"single": {{U: 1, V: 2, T: 3}},
		"near-max": {
			{U: math.MaxUint32, V: math.MaxUint32, T: math.MaxUint32},
			{U: math.MaxUint32, V: math.MaxUint32, T: 0},
			{U: 0, V: math.MaxUint32, T: math.MaxUint32},
		},
	}
	random := make(TemporalList, 4000)
	for i := range random {
		random[i] = TemporalEdge{U: next() % 100, V: next() % 100, T: next() % 20}
	}
	cases["random-dups"] = random
	return cases
}

func TestTemporalSortDifferential(t *testing.T) {
	for name, l := range temporalSortCases() {
		want := slices.Clone(l)
		sort.Slice(want, func(i, j int) bool { return want[i].less(want[j]) })
		for _, p := range []int{1, 4} {
			radixed := slices.Clone(l)
			radixed.Sort(p)
			if !slices.Equal(radixed, want) {
				t.Errorf("%s p=%d: TemporalList.Sort disagrees with sort.Slice", name, p)
			}
			merged := slices.Clone(l)
			merged.SortMerge(p)
			if !slices.Equal(merged, want) {
				t.Errorf("%s p=%d: TemporalList.SortMerge disagrees with sort.Slice", name, p)
			}
		}
	}
}

func TestTemporalPreparedMatchesUnfusedPipeline(t *testing.T) {
	for name, l := range temporalSortCases() {
		want := slices.Clone(l)
		sort.Slice(want, func(i, j int) bool { return want[i].less(want[j]) })
		dedup := want[:0]
		for i, e := range want {
			if i == 0 || e != want[i-1] {
				dedup = append(dedup, e)
			}
		}
		if len(dedup) == 0 {
			dedup = TemporalList{}
		}
		for _, p := range []int{1, 4} {
			orig := slices.Clone(l)
			got := orig.Prepared(p)
			if !slices.Equal(got, dedup) {
				t.Errorf("%s p=%d: TemporalList.Prepared disagrees with sort+dedup", name, p)
			}
			if !slices.Equal(orig, l) {
				t.Errorf("%s p=%d: TemporalList.Prepared modified its receiver", name, p)
			}
		}
	}
}
