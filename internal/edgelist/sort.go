package edgelist

import (
	"csrgraph/internal/parallel"
	"csrgraph/internal/radix"
)

// This file is the radix-sort construction path: (u, v) edges packed into
// uint64 keys and (u, v, t) triples into 128-bit key tuples, sorted by
// internal/radix, with the surrounding symmetrize/dedup steps fused onto
// the key buffers so Build-style pipelines stop making full intermediate
// edge-list copies. The comparison-based merge sort survives in
// edgelist.go as SortByUVMerge/SortMerge, the differential-test and
// benchmark baseline.

// key packs an edge into the 64-bit sort key whose ascending order is the
// (U, V) order.
func (e Edge) key() uint64 { return uint64(e.U)<<32 | uint64(e.V) }

// edgeOf unpacks a sort key back into an edge.
func edgeOf(k uint64) Edge { return Edge{U: NodeID(k >> 32), V: NodeID(k)} }

// sortEdgesRadix sorts l by (U, V) in place via the packed-key radix sort.
func sortEdgesRadix(l List, p int) {
	n := len(l)
	if n < 2 {
		return
	}
	keys := make([]uint64, n)
	scratch := make([]uint64, n)
	parallel.For(n, p, func(_ int, r parallel.Range) {
		for i := r.Start; i < r.End; i++ {
			keys[i] = l[i].key()
		}
	})
	radix.Sort64(keys, scratch, p)
	parallel.For(n, p, func(_ int, r parallel.Range) {
		for i := r.Start; i < r.End; i++ {
			l[i] = edgeOf(keys[i])
		}
	})
}

// Prepared returns a sorted, deduplicated copy of l, optionally
// symmetrized — the construction pipeline's front end in one fused pass
// structure. Instead of materializing Symmetrize/Clone lists and a second
// dedup list, edges (and their reverses, when symmetrizing) are packed
// straight into the radix key buffer, sorted there, and deduplicated while
// unpacking into the exactly-sized result. l itself is never modified.
func (l List) Prepared(symmetrize bool, p int) List {
	n := len(l)
	if n == 0 {
		return List{}
	}
	chunks := parallel.Chunks(n, p)
	nc := len(chunks)
	total := n
	var revOff []int
	if symmetrize {
		// Count reverse edges (self-loops contribute none) per chunk, then
		// place chunk c's reverses at n+revOff[c] so the pack stays
		// write-disjoint across chunks.
		revOff = make([]int, nc+1)
		parallel.For(n, nc, func(c int, r parallel.Range) {
			cnt := 0
			for i := r.Start; i < r.End; i++ {
				if l[i].U != l[i].V {
					cnt++
				}
			}
			revOff[c+1] = cnt
		})
		for c := 0; c < nc; c++ {
			revOff[c+1] += revOff[c]
		}
		total = n + revOff[nc]
	}
	keys := make([]uint64, total)
	scratch := make([]uint64, total)
	parallel.For(n, nc, func(c int, r parallel.Range) {
		w := 0
		if symmetrize {
			w = n + revOff[c]
		}
		for i := r.Start; i < r.End; i++ {
			e := l[i]
			keys[i] = e.key()
			if symmetrize && e.U != e.V {
				keys[w] = uint64(e.V)<<32 | uint64(e.U)
				w++
			}
		}
	})
	radix.Sort64(keys, scratch, p)
	return dedupKeys(keys, p)
}

// dedupKeys compacts consecutive duplicates of a sorted key array and
// unpacks the survivors into a fresh, exactly-sized List — dedup and
// decode fused into one parallel pass pair (count uniques, scan, write).
func dedupKeys(keys []uint64, p int) List {
	n := len(keys)
	if n == 0 {
		return List{}
	}
	chunks := parallel.Chunks(n, p)
	nc := len(chunks)
	// kept[c+1] counts chunk c's uniques; an element survives iff it
	// differs from its predecessor (chunk boundaries read the neighbouring
	// chunk's last key, which is stable during this read-only phase).
	kept := make([]int, nc+1)
	parallel.For(n, nc, func(c int, r parallel.Range) {
		cnt := 0
		for i := r.Start; i < r.End; i++ {
			if i == 0 || keys[i] != keys[i-1] {
				cnt++
			}
		}
		kept[c+1] = cnt
	})
	for c := 0; c < nc; c++ {
		kept[c+1] += kept[c]
	}
	out := make(List, kept[nc])
	parallel.For(n, nc, func(c int, r parallel.Range) {
		w := kept[c]
		for i := r.Start; i < r.End; i++ {
			if i == 0 || keys[i] != keys[i-1] {
				out[w] = edgeOf(keys[i])
				w++
			}
		}
	})
	return out
}

// loKey packs the node pair of a temporal event; together with T as the
// high word it forms the 128-bit (T, U, V) sort key.
func (e TemporalEdge) loKey() uint64 { return uint64(e.U)<<32 | uint64(e.V) }

// packTemporal fills the (hi, lo) key tuple arrays for l.
func packTemporal(l TemporalList, hi, lo []uint64, p int) {
	parallel.For(len(l), p, func(_ int, r parallel.Range) {
		for i := r.Start; i < r.End; i++ {
			hi[i] = uint64(l[i].T)
			lo[i] = l[i].loKey()
		}
	})
}

// temporalOf unpacks a (hi, lo) key tuple back into an event.
func temporalOf(hi, lo uint64) TemporalEdge {
	return TemporalEdge{U: NodeID(lo >> 32), V: NodeID(lo), T: Timestamp(hi)}
}

// sortTemporalRadix establishes the (T, U, V) order in place via the
// 128-bit key-tuple radix sort.
func sortTemporalRadix(l TemporalList, p int) {
	n := len(l)
	if n < 2 {
		return
	}
	hi := make([]uint64, n)
	lo := make([]uint64, n)
	packTemporal(l, hi, lo, p)
	radix.Sort128(hi, lo, make([]uint64, n), make([]uint64, n), p)
	parallel.For(n, p, func(_ int, r parallel.Range) {
		for i := r.Start; i < r.End; i++ {
			l[i] = temporalOf(hi[i], lo[i])
		}
	})
}

// Prepared returns a sorted, deduplicated copy of the event list — the
// temporal counterpart of List.Prepared: events are packed into key
// tuples, sorted, and exact-duplicate triples are dropped while unpacking
// into the exactly-sized result. l itself is never modified.
func (l TemporalList) Prepared(p int) TemporalList {
	n := len(l)
	if n == 0 {
		return TemporalList{}
	}
	hi := make([]uint64, n)
	lo := make([]uint64, n)
	packTemporal(l, hi, lo, p)
	radix.Sort128(hi, lo, make([]uint64, n), make([]uint64, n), p)
	chunks := parallel.Chunks(n, p)
	nc := len(chunks)
	kept := make([]int, nc+1)
	parallel.For(n, nc, func(c int, r parallel.Range) {
		cnt := 0
		for i := r.Start; i < r.End; i++ {
			if i == 0 || hi[i] != hi[i-1] || lo[i] != lo[i-1] {
				cnt++
			}
		}
		kept[c+1] = cnt
	})
	for c := 0; c < nc; c++ {
		kept[c+1] += kept[c]
	}
	out := make(TemporalList, kept[nc])
	parallel.For(n, nc, func(c int, r parallel.Range) {
		w := kept[c]
		for i := r.Start; i < r.End; i++ {
			if i == 0 || hi[i] != hi[i-1] || lo[i] != lo[i-1] {
				out[w] = temporalOf(hi[i], lo[i])
				w++
			}
		}
	})
	return out
}
