package edgelist

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// WeightedEdge is a directed edge with a uint32 weight — the vA value the
// paper's CSR definition carries for weighted graphs.
type WeightedEdge struct {
	U, V NodeID
	W    uint32
}

// WeightedList is a sequence of weighted edges.
type WeightedList []WeightedEdge

// SizeBytes returns the in-memory footprint: three 4-byte fields per edge.
func (l WeightedList) SizeBytes() int64 { return int64(len(l)) * 12 }

// ReadWeightedText parses "u v w" lines ('#' comments, blank lines
// skipped).
func ReadWeightedText(r io.Reader) (WeightedList, error) {
	var out WeightedList
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		fields, skip, err := splitLine(sc.Text(), line, 3)
		if err != nil {
			return nil, err
		}
		if skip {
			continue
		}
		out = append(out, WeightedEdge{U: fields[0], V: fields[1], W: fields[2]})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("edgelist: read: %w", err)
	}
	return out, nil
}

// WriteText writes the list as "u v w" lines.
func (l WeightedList) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, e := range l {
		if _, err := fmt.Fprintf(bw, "%d\t%d\t%d\n", e.U, e.V, e.W); err != nil {
			return err
		}
	}
	return bw.Flush()
}

const binMagicWeighted = "CSWL"

// WriteBinary writes the list with a 12-byte record per edge.
func (l WeightedList) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binMagicWeighted); err != nil {
		return err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(l)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var rec [12]byte
	for _, e := range l {
		binary.LittleEndian.PutUint32(rec[0:], e.U)
		binary.LittleEndian.PutUint32(rec[4:], e.V)
		binary.LittleEndian.PutUint32(rec[8:], e.W)
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadWeightedBinary reads a list written by WriteBinary.
func ReadWeightedBinary(r io.Reader) (WeightedList, error) {
	br := bufio.NewReader(r)
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("edgelist: weighted header: %w", err)
	}
	if string(hdr[:4]) != binMagicWeighted {
		return nil, fmt.Errorf("edgelist: bad magic %q", hdr[:4])
	}
	n := binary.LittleEndian.Uint64(hdr[4:])
	const maxEdges = 1 << 33
	if n > maxEdges {
		return nil, fmt.Errorf("edgelist: implausible edge count %d", n)
	}
	out := make(WeightedList, 0, min(n, 1<<20))
	var rec [12]byte
	for i := uint64(0); i < n; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("edgelist: weighted edge %d: %w", i, err)
		}
		out = append(out, WeightedEdge{
			U: binary.LittleEndian.Uint32(rec[0:]),
			V: binary.LittleEndian.Uint32(rec[4:]),
			W: binary.LittleEndian.Uint32(rec[8:]),
		})
	}
	return out, nil
}
