package edgelist

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestWeightedTextRoundTrip(t *testing.T) {
	l := WeightedList{{U: 0, V: 1, W: 5}, {U: 2, V: 3, W: 0}}
	var buf bytes.Buffer
	if err := l.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadWeightedText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, l) {
		t.Fatalf("got %v, want %v", got, l)
	}
}

func TestReadWeightedTextErrors(t *testing.T) {
	if _, err := ReadWeightedText(strings.NewReader("0 1\n")); err == nil {
		t.Fatal("want error for missing weight")
	}
	if _, err := ReadWeightedText(strings.NewReader("0 1 x\n")); err == nil {
		t.Fatal("want error for bad weight")
	}
	got, err := ReadWeightedText(strings.NewReader("# c\n\n1 2 3\n"))
	if err != nil || len(got) != 1 {
		t.Fatalf("comments/blank handling: %v %v", got, err)
	}
}

func TestWeightedBinaryRoundTrip(t *testing.T) {
	l := WeightedList{{U: 1, V: 2, W: 3}, {U: 4, V: 5, W: 0xFFFFFFFF}}
	var buf bytes.Buffer
	if err := l.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadWeightedBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, l) {
		t.Fatal("binary round trip mismatch")
	}
	if _, err := ReadWeightedBinary(bytes.NewReader([]byte("CSEL\x00\x00\x00\x00\x00\x00\x00\x00"))); err == nil {
		t.Fatal("want magic error")
	}
	// Lying header over a short stream must error, not over-allocate.
	hdr := append([]byte("CSWL"), 0xFF, 0xFF, 0xFF, 0x00, 0, 0, 0, 0)
	if _, err := ReadWeightedBinary(bytes.NewReader(hdr)); err == nil {
		t.Fatal("want truncation error")
	}
}

func TestWeightedSizeBytes(t *testing.T) {
	if got := (make(WeightedList, 4)).SizeBytes(); got != 48 {
		t.Fatalf("SizeBytes = %d", got)
	}
}
