package edgelist

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// The text format is SNAP's: one "u<sep>v" pair per line, where <sep> is any
// run of spaces or tabs; lines starting with '#' are comments. Temporal
// files carry a third column, the time-frame.

// ReadText parses a SNAP-format edge list from r.
func ReadText(r io.Reader) (List, error) {
	var out List
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		fields, skip, err := splitLine(sc.Text(), line, 2)
		if err != nil {
			return nil, err
		}
		if skip {
			continue
		}
		out = append(out, Edge{fields[0], fields[1]})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("edgelist: read: %w", err)
	}
	return out, nil
}

// ReadTemporalText parses a "u v t" triple list from r.
func ReadTemporalText(r io.Reader) (TemporalList, error) {
	var out TemporalList
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		fields, skip, err := splitLine(sc.Text(), line, 3)
		if err != nil {
			return nil, err
		}
		if skip {
			continue
		}
		out = append(out, TemporalEdge{fields[0], fields[1], fields[2]})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("edgelist: read: %w", err)
	}
	return out, nil
}

// splitLine parses want whitespace-separated uint32 fields from a line,
// reporting skip for blank and comment lines.
func splitLine(s string, line, want int) (fields [3]uint32, skip bool, err error) {
	s = strings.TrimSpace(s)
	if s == "" || strings.HasPrefix(s, "#") {
		return fields, true, nil
	}
	parts := strings.Fields(s)
	if len(parts) != want {
		return fields, false, fmt.Errorf("edgelist: line %d: got %d fields, want %d", line, len(parts), want)
	}
	for i, p := range parts {
		v, perr := strconv.ParseUint(p, 10, 32)
		if perr != nil {
			return fields, false, fmt.Errorf("edgelist: line %d: %q: %w", line, p, perr)
		}
		fields[i] = uint32(v)
	}
	return fields, false, nil
}

// WriteText writes the list in SNAP text format.
func (l List) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, e := range l {
		if _, err := fmt.Fprintf(bw, "%d\t%d\n", e.U, e.V); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteText writes the temporal list as "u v t" lines.
func (l TemporalList) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, e := range l {
		if _, err := fmt.Fprintf(bw, "%d\t%d\t%d\n", e.U, e.V, e.T); err != nil {
			return err
		}
	}
	return bw.Flush()
}

const (
	binMagic         = "CSEL"
	binMagicTemporal = "CSTL"
)

// WriteBinary writes the list in a compact little-endian binary framing:
// magic, edge count, then 8 bytes per edge.
func (l List) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binMagic); err != nil {
		return err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(l)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var rec [8]byte
	for _, e := range l {
		binary.LittleEndian.PutUint32(rec[0:], e.U)
		binary.LittleEndian.PutUint32(rec[4:], e.V)
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary reads a list written by WriteBinary.
func ReadBinary(r io.Reader) (List, error) {
	br := bufio.NewReader(r)
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("edgelist: binary header: %w", err)
	}
	if string(hdr[:4]) != binMagic {
		return nil, fmt.Errorf("edgelist: bad magic %q", hdr[:4])
	}
	n := binary.LittleEndian.Uint64(hdr[4:])
	const maxEdges = 1 << 33
	if n > maxEdges {
		return nil, fmt.Errorf("edgelist: implausible edge count %d", n)
	}
	// The count comes from an untrusted header: grow with append so a lying
	// header on a short stream errors before a huge up-front allocation.
	out := make(List, 0, min(n, 1<<20))
	var rec [8]byte
	for i := uint64(0); i < n; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("edgelist: edge %d: %w", i, err)
		}
		out = append(out, Edge{binary.LittleEndian.Uint32(rec[0:]), binary.LittleEndian.Uint32(rec[4:])})
	}
	return out, nil
}

// WriteBinary writes the temporal list with a 12-byte record per event.
func (l TemporalList) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binMagicTemporal); err != nil {
		return err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(l)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var rec [12]byte
	for _, e := range l {
		binary.LittleEndian.PutUint32(rec[0:], e.U)
		binary.LittleEndian.PutUint32(rec[4:], e.V)
		binary.LittleEndian.PutUint32(rec[8:], e.T)
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTemporalBinary reads a temporal list written by WriteBinary.
func ReadTemporalBinary(r io.Reader) (TemporalList, error) {
	br := bufio.NewReader(r)
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("edgelist: binary header: %w", err)
	}
	if string(hdr[:4]) != binMagicTemporal {
		return nil, fmt.Errorf("edgelist: bad magic %q", hdr[:4])
	}
	n := binary.LittleEndian.Uint64(hdr[4:])
	const maxEdges = 1 << 33
	if n > maxEdges {
		return nil, fmt.Errorf("edgelist: implausible event count %d", n)
	}
	out := make(TemporalList, 0, min(n, 1<<20))
	var rec [12]byte
	for i := uint64(0); i < n; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("edgelist: event %d: %w", i, err)
		}
		out = append(out, TemporalEdge{
			U: binary.LittleEndian.Uint32(rec[0:]),
			V: binary.LittleEndian.Uint32(rec[4:]),
			T: binary.LittleEndian.Uint32(rec[8:]),
		})
	}
	return out, nil
}

// LoadFile reads an edge list from path, choosing the codec by extension:
// ".bin" is the binary framing, ".graph"/".metis" the METIS adjacency
// format (trailing isolated nodes are not representable in a bare edge
// list and are dropped), anything else SNAP text. A trailing ".gz" on any
// of these decompresses transparently — SNAP distributes its datasets
// gzipped.
func LoadFile(path string) (List, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() //csr:errok read-only file; close cannot lose data
	var r io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		gz, gerr := gzip.NewReader(f)
		if gerr != nil {
			return nil, fmt.Errorf("edgelist: %s: %w", path, gerr)
		}
		defer gz.Close() //csr:errok decode path; truncation surfaces as a read error first
		r = gz
		path = strings.TrimSuffix(path, ".gz")
	}
	switch {
	case strings.HasSuffix(path, ".bin"):
		return ReadBinary(r)
	case strings.HasSuffix(path, ".graph"), strings.HasSuffix(path, ".metis"):
		l, _, merr := ReadMETIS(r)
		return l, merr
	}
	return ReadText(r)
}

// SaveFile writes the list to path, choosing the codec by extension as in
// LoadFile (".gz" compresses; METIS output is not supported here — use
// WriteMETIS, which needs the node count).
func (l List) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	var w io.Writer = f
	var gz *gzip.Writer
	logical := path
	if strings.HasSuffix(path, ".gz") {
		gz = gzip.NewWriter(f)
		w = gz
		logical = strings.TrimSuffix(path, ".gz")
	}
	var werr error
	if strings.HasSuffix(logical, ".bin") {
		werr = l.WriteBinary(w)
	} else {
		werr = l.WriteText(w)
	}
	if gz != nil {
		if cerr := gz.Close(); werr == nil {
			werr = cerr
		}
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}
