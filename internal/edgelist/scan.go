package edgelist

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"strings"
)

// This file is the streaming counterpart of LoadFile: edges are delivered
// one at a time to a callback instead of materialized as a List, so the
// external-memory construction pipeline (internal/mgraph) can ingest edge
// lists far larger than RAM. The codecs match LoadFile's: SNAP text and
// the binary framing, each optionally gzipped. METIS is adjacency-shaped
// and already needs the whole structure in memory, so it has no streaming
// reader.

// StreamText streams a SNAP-format text edge list from r, calling emit for
// every edge in file order. A non-nil error from emit aborts the scan and
// is returned unchanged.
func StreamText(r io.Reader, emit func(u, v uint32) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		fields, skip, err := splitLine(sc.Text(), line, 2)
		if err != nil {
			return err
		}
		if skip {
			continue
		}
		if err := emit(fields[0], fields[1]); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("edgelist: read: %w", err)
	}
	return nil
}

// StreamBinary streams an edge list in the WriteBinary framing from r.
func StreamBinary(r io.Reader, emit func(u, v uint32) error) error {
	br := bufio.NewReader(r)
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return fmt.Errorf("edgelist: binary header: %w", err)
	}
	if string(hdr[:4]) != binMagic {
		return fmt.Errorf("edgelist: bad magic %q", hdr[:4])
	}
	n := binary.LittleEndian.Uint64(hdr[4:])
	const maxEdges = 1 << 33
	if n > maxEdges {
		return fmt.Errorf("edgelist: implausible edge count %d", n)
	}
	var rec [8]byte
	for i := uint64(0); i < n; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return fmt.Errorf("edgelist: edge %d: %w", i, err)
		}
		if err := emit(binary.LittleEndian.Uint32(rec[0:]), binary.LittleEndian.Uint32(rec[4:])); err != nil {
			return err
		}
	}
	return nil
}

// StreamFile streams the edge list at path, choosing the codec by
// extension exactly like LoadFile (".bin" binary framing, ".gz" gzip
// wrapper, anything else SNAP text). The file is read once front to back;
// peak memory is one I/O buffer regardless of list size.
func StreamFile(path string, emit func(u, v uint32) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close() //csr:errok read-only file; close cannot lose data
	var r io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		gz, gerr := gzip.NewReader(f)
		if gerr != nil {
			return fmt.Errorf("edgelist: %s: %w", path, gerr)
		}
		defer gz.Close() //csr:errok decode path; truncation surfaces as a read error first
		r = gz
		path = strings.TrimSuffix(path, ".gz")
	}
	switch {
	case strings.HasSuffix(path, ".bin"):
		return StreamBinary(r, emit)
	case strings.HasSuffix(path, ".graph"), strings.HasSuffix(path, ".metis"):
		return fmt.Errorf("edgelist: %s: METIS adjacency files have no streaming reader", path)
	}
	return StreamText(r, emit)
}
