package edgelist

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestReadTextSNAPFormat(t *testing.T) {
	const in = `# Directed graph
# Nodes: 4 Edges: 3
0	1
1 2

2   3
`
	got, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := List{{0, 1}, {1, 2}, {2, 3}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestReadTextErrors(t *testing.T) {
	for name, in := range map[string]string{
		"too few fields":  "0\n",
		"too many fields": "0 1 2\n",
		"not a number":    "a b\n",
		"negative":        "-1 2\n",
		"overflow":        "4294967296 0\n",
	} {
		if _, err := ReadText(strings.NewReader(in)); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func TestTextRoundTrip(t *testing.T) {
	l := List{{0, 5}, {1, 6}, {7, 1}}
	var buf bytes.Buffer
	if err := l.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, l) {
		t.Fatalf("round trip: got %v, want %v", got, l)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	l := randomList(1000, 1<<20, 1)
	var buf bytes.Buffer
	if err := l.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, l) {
		t.Fatal("binary round trip mismatch")
	}
}

func TestReadBinaryErrors(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("XXXX\x00\x00\x00\x00\x00\x00\x00\x00"))); err == nil {
		t.Fatal("want error for bad magic")
	}
	if _, err := ReadBinary(bytes.NewReader([]byte("CS"))); err == nil {
		t.Fatal("want error for short header")
	}
	// Header claims 5 edges but none follow.
	hdr := append([]byte("CSEL"), 5, 0, 0, 0, 0, 0, 0, 0)
	if _, err := ReadBinary(bytes.NewReader(hdr)); err == nil {
		t.Fatal("want error for truncated payload")
	}
}

func TestTemporalTextRoundTrip(t *testing.T) {
	l := TemporalList{{0, 1, 0}, {1, 2, 3}, {2, 0, 3}}
	var buf bytes.Buffer
	if err := l.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTemporalText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, l) {
		t.Fatalf("got %v, want %v", got, l)
	}
}

func TestTemporalBinaryRoundTrip(t *testing.T) {
	l := TemporalList{{0, 1, 0}, {1, 2, 3}, {9, 9, 9}}
	var buf bytes.Buffer
	if err := l.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTemporalBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, l) {
		t.Fatalf("got %v, want %v", got, l)
	}
	if _, err := ReadTemporalBinary(bytes.NewReader([]byte("CSEL\x00\x00\x00\x00\x00\x00\x00\x00"))); err == nil {
		t.Fatal("want magic mismatch error")
	}
}

func TestLoadSaveFile(t *testing.T) {
	dir := t.TempDir()
	l := List{{0, 1}, {2, 3}}
	for _, name := range []string{"g.txt", "g.bin", "g.txt.gz", "g.bin.gz"} {
		path := filepath.Join(dir, name)
		if err := l.SaveFile(path); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := LoadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(got, l) {
			t.Fatalf("%s: got %v, want %v", name, got, l)
		}
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.txt")); err == nil {
		t.Fatal("want error for missing file")
	}
	// A .gz that is not gzipped must error cleanly.
	bogus := filepath.Join(dir, "bogus.txt.gz")
	if err := os.WriteFile(bogus, []byte("0 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(bogus); err == nil {
		t.Fatal("want gzip header error")
	}
	// Verify the .gz payload really is compressed, not raw text.
	data, err := os.ReadFile(filepath.Join(dir, "g.txt.gz"))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 2 || data[0] != 0x1f || data[1] != 0x8b {
		t.Fatal("g.txt.gz missing gzip magic")
	}
}
