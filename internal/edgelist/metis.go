package edgelist

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// METIS adjacency format support: the de facto interchange format of the
// HPC graph-partitioning world. Line 1 is "n m" (node and undirected edge
// counts); line i+1 lists the 1-indexed neighbors of node i. Comment
// lines start with '%'. Only the unweighted format (no fmt flags) is
// handled; weighted headers are rejected explicitly.

// ReadMETIS parses a METIS adjacency file into a directed edge list (each
// undirected METIS edge appears in both directions, as the format stores
// it) and returns the list plus the declared node count.
func ReadMETIS(r io.Reader) (List, int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)

	var numNodes, numEdges int
	headerSeen := false
	node := 0
	var out List
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "%") {
			if !headerSeen {
				continue
			}
			// A blank body line is a node with no neighbors.
			if text == "" {
				node++
				if node > numNodes {
					return nil, 0, fmt.Errorf("edgelist: metis line %d: more adjacency lines than the declared %d nodes", line, numNodes)
				}
				continue
			}
			continue
		}
		fields := strings.Fields(text)
		if !headerSeen {
			if len(fields) < 2 || len(fields) > 4 {
				return nil, 0, fmt.Errorf("edgelist: metis line %d: header needs 2-4 fields, got %d", line, len(fields))
			}
			if len(fields) >= 3 && fields[2] != "0" && fields[2] != "00" && fields[2] != "000" {
				return nil, 0, fmt.Errorf("edgelist: metis line %d: weighted format %q not supported", line, fields[2])
			}
			var err error
			numNodes, err = strconv.Atoi(fields[0])
			if err != nil || numNodes < 0 {
				return nil, 0, fmt.Errorf("edgelist: metis line %d: bad node count %q", line, fields[0])
			}
			numEdges, err = strconv.Atoi(fields[1])
			if err != nil || numEdges < 0 {
				return nil, 0, fmt.Errorf("edgelist: metis line %d: bad edge count %q", line, fields[1])
			}
			headerSeen = true
			continue
		}
		node++
		if node > numNodes {
			return nil, 0, fmt.Errorf("edgelist: metis line %d: more adjacency lines than the declared %d nodes", line, numNodes)
		}
		for _, f := range fields {
			v, err := strconv.ParseUint(f, 10, 32)
			if err != nil || v == 0 || int(v) > numNodes {
				return nil, 0, fmt.Errorf("edgelist: metis line %d: bad neighbor %q (1..%d)", line, f, numNodes)
			}
			out = append(out, Edge{U: uint32(node - 1), V: uint32(v - 1)})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, 0, fmt.Errorf("edgelist: metis read: %w", err)
	}
	if !headerSeen {
		return nil, 0, fmt.Errorf("edgelist: metis: missing header")
	}
	if node > numNodes {
		return nil, 0, fmt.Errorf("edgelist: metis: %d adjacency lines for %d nodes", node, numNodes)
	}
	if len(out) != 2*numEdges {
		return nil, 0, fmt.Errorf("edgelist: metis: header declares %d undirected edges, body has %d directed entries", numEdges, len(out))
	}
	return out, numNodes, nil
}

// WriteMETIS writes a directed edge list as a METIS adjacency file. The
// list must be symmetric (every edge present in both directions) with no
// self-loops, which is what the format represents; it is validated and a
// descriptive error returned otherwise. numNodes fixes the node-id space.
func (l List) WriteMETIS(w io.Writer, numNodes int) error {
	rows := make([][]uint32, numNodes)
	for i, e := range l {
		if e.U == e.V {
			return fmt.Errorf("edgelist: metis cannot represent self-loop (%d,%d) at %d", e.U, e.V, i)
		}
		if int(e.U) >= numNodes || int(e.V) >= numNodes {
			return fmt.Errorf("edgelist: edge (%d,%d) outside %d nodes", e.U, e.V, numNodes)
		}
		rows[e.U] = append(rows[e.U], e.V)
	}
	// Symmetry check via a set.
	seen := make(map[Edge]struct{}, len(l))
	for _, e := range l {
		seen[e] = struct{}{}
	}
	for _, e := range l {
		if _, ok := seen[Edge{U: e.V, V: e.U}]; !ok {
			return fmt.Errorf("edgelist: metis needs symmetric input; reverse of (%d,%d) missing", e.U, e.V)
		}
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d\n", numNodes, len(l)/2); err != nil {
		return err
	}
	for _, row := range rows {
		for i, v := range row {
			if i > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.FormatUint(uint64(v+1), 10)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}
