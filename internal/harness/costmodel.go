package harness

import (
	"time"

	"csrgraph/internal/bitpack"
	"csrgraph/internal/parallel"
)

// The work-span cost model.
//
// The container this reproduction runs in may have a single CPU, where wall
// clock cannot exhibit a 64-way speed-up. The model mode therefore derives
// T(p) from the construction's execution DAG: for every phase of the
// pipeline the per-chunk work is computed with the *same* partitioning the
// real implementation uses (parallel.Chunks), the phase's parallel time is
// its largest chunk, and the serial carry/merge steps and barriers are
// added at full cost. A single cost-per-operation constant is calibrated
// from a measured p=1 wall-clock run, so the model's absolute scale is
// honest and its p-scaling is mechanical, not assumed.
//
// Phases of BuildPacked (Sections III-A1..3):
//
//	degree   — m edge visits, chunked over edges; serial p-entry merge
//	scan     — two passes over n (in-chunk scan + carry add); serial
//	           p-entry carry propagation; 2 barriers
//	fill     — m column copies, chunked over edges
//	pack iA  — n+1 append operations, chunked; serial merge of the
//	           per-chunk bit arrays, proportional to total words
//	pack jA  — m append operations, chunked; serial merge likewise
//
// The serial merge is the "inherent sequential step" the paper blames for
// the steady (rather than linear) decline from 8 to 64 processors.

// CostModel holds the calibrated constants.
type CostModel struct {
	// OpNs is the cost of one modeled operation in nanoseconds, calibrated
	// from a p=1 wall-clock run (Calibrate).
	OpNs float64
	// BarrierNs is the fixed cost of one team barrier, covering goroutine
	// wake-up; a typical Go value is a few microseconds.
	BarrierNs float64
	// SpawnNs is the per-goroutine launch cost charged once per processor
	// per parallel phase.
	SpawnNs float64
}

// DefaultBarrierNs and DefaultSpawnNs are typical Go synchronization costs.
const (
	DefaultBarrierNs = 2000.0
	DefaultSpawnNs   = 500.0
)

// packOpWeight is the relative cost of one bit-append versus one plain
// array operation (shift/mask/bounds versus a move).
const packOpWeight = 2.0

// phase describes one parallel phase: total work split over chunks, plus a
// serial tail executed by a single processor.
type phase struct {
	parallelWork int     // items, chunked with parallel.Chunks
	weight       float64 // cost multiplier per item
	serialWork   int     // items executed serially at weight 1
	barriers     int
}

// constructionPhases returns the modeled phase list of BuildPacked for a
// graph with n nodes and m edges at processor count p. Widths follow the
// bit-packing rule so the serial merge grows with the packed payload.
func constructionPhases(n, m, p int) []phase {
	wOff := bitpack.WidthFor(uint32(m))
	wCol := bitpack.WidthFor(uint32(max(n-1, 0)))
	serialMerge := func(items, width int) int {
		if p == 1 {
			return 0 // a single chunk is used as-is, no merge pass
		}
		return items * width / 64
	}
	return []phase{
		{parallelWork: m, weight: 1, serialWork: p, barriers: 1},                        // degree (Alg 2-3)
		{parallelWork: 2 * n, weight: 1, serialWork: p, barriers: 2},                    // scan (Alg 1)
		{parallelWork: m, weight: 1},                                                    // column fill
		{parallelWork: n + 1, weight: packOpWeight, serialWork: serialMerge(n+1, wOff)}, // pack iA (Alg 4)
		{parallelWork: m, weight: packOpWeight, serialWork: serialMerge(m, wCol)},       // pack jA (Alg 4)
	}
}

// SimulateConstruction returns the modeled wall time of BuildPacked for a
// graph with n nodes and m edges on p processors.
func (cm CostModel) SimulateConstruction(n, m, p int) time.Duration {
	if p < 1 {
		p = 1
	}
	var ns float64
	for _, ph := range constructionPhases(n, m, p) {
		// Parallel part: the phase finishes when its largest chunk does.
		chunks := parallel.Chunks(ph.parallelWork, p)
		maxChunk := 0
		for _, r := range chunks {
			if r.Len() > maxChunk {
				maxChunk = r.Len()
			}
		}
		ns += float64(maxChunk) * ph.weight * cm.OpNs
		ns += float64(ph.serialWork) * cm.OpNs
		ns += float64(ph.barriers) * cm.BarrierNs
		if p > 1 {
			ns += float64(p) * cm.SpawnNs
		}
	}
	return time.Duration(ns)
}

// totalOps returns the p=1 operation count of the model, used for
// calibration.
func totalOps(n, m int) float64 {
	var ops float64
	for _, ph := range constructionPhases(n, m, 1) {
		ops += float64(ph.parallelWork)*ph.weight + float64(ph.serialWork)
	}
	return ops
}

// Calibrate builds a CostModel whose p=1 prediction equals the measured
// p=1 construction time for a graph of n nodes and m edges.
func Calibrate(measuredP1 time.Duration, n, m int) CostModel {
	ops := totalOps(n, m)
	if ops == 0 {
		ops = 1
	}
	return CostModel{
		OpNs:      float64(measuredP1.Nanoseconds()) / ops,
		BarrierNs: DefaultBarrierNs,
		SpawnNs:   DefaultSpawnNs,
	}
}
