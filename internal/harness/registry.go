// Package harness is the experiment driver that regenerates the paper's
// evaluation artifacts: Table II (construction time and compression across
// processor counts for four graphs), Figure 6 (time vs processors) and
// Figure 7 (speed-up vs processors).
//
// The paper's inputs are four SNAP datasets; offline, the registry
// substitutes seeded R-MAT graphs with matching node/edge counts (divided
// by a scale factor so the suite runs anywhere; scale 1 regenerates
// full-size inputs). See DESIGN.md §2 for why the substitution preserves
// the measured behaviour.
package harness

import (
	"fmt"

	"csrgraph/internal/edgelist"
	"csrgraph/internal/gen"
)

// GraphSpec describes one evaluation graph.
type GraphSpec struct {
	// Name as in Table II.
	Name string
	// PaperNodes and PaperEdges are the dataset sizes reported in Table II.
	PaperNodes, PaperEdges int
	// Params selects the R-MAT skew (social graphs vs the web graph).
	Params gen.RMATParams
	// Seed makes the instance reproducible.
	Seed uint64
}

// Registry lists the four graphs of Table II in paper order.
var Registry = []GraphSpec{
	{Name: "LiveJournal", PaperNodes: 4_847_571, PaperEdges: 68_993_773, Params: gen.DefaultRMAT, Seed: 0x11},
	{Name: "Pokec", PaperNodes: 1_632_803, PaperEdges: 30_622_564, Params: gen.DefaultRMAT, Seed: 0x22},
	{Name: "Orkut", PaperNodes: 3_072_627, PaperEdges: 117_185_083, Params: gen.DefaultRMAT, Seed: 0x33},
	{Name: "WebNotreDame", PaperNodes: 325_729, PaperEdges: 1_497_134,
		Params: gen.RMATParams{A: 0.45, B: 0.22, C: 0.22, D: 0.11}, Seed: 0x44},
}

// ProcessorCounts is Table II's processor sweep.
var ProcessorCounts = []int{1, 4, 8, 16, 64}

// Find returns the registry entry with the given name.
func Find(name string) (GraphSpec, error) {
	for _, g := range Registry {
		if g.Name == name {
			return g, nil
		}
	}
	return GraphSpec{}, fmt.Errorf("harness: unknown graph %q (have LiveJournal, Pokec, Orkut, WebNotreDame)", name)
}

// Instance is a generated, construction-ready evaluation input.
type Instance struct {
	Spec     GraphSpec
	Scale    int
	Edges    edgelist.List // sorted, deduplicated
	NumNodes int
}

// rmatScaleFor picks the smallest R-MAT scale whose node space covers n.
func rmatScaleFor(n int) int {
	s := 1
	for (1 << s) < n {
		s++
	}
	return s
}

// Generate materializes the graph at 1/scale of the paper's size using p
// processors. scale must be >= 1; scale 1 is the full dataset size.
func (g GraphSpec) Generate(scale, p int) (*Instance, error) {
	if scale < 1 {
		return nil, fmt.Errorf("harness: scale %d must be >= 1", scale)
	}
	targetNodes := g.PaperNodes / scale
	targetEdges := g.PaperEdges / scale
	if targetNodes < 2 || targetEdges < 1 {
		return nil, fmt.Errorf("harness: scale %d leaves %s too small (%d nodes, %d edges)",
			scale, g.Name, targetNodes, targetEdges)
	}
	raw, err := gen.RMAT(rmatScaleFor(targetNodes), targetEdges, g.Params, g.Seed, p)
	if err != nil {
		return nil, err
	}
	sorted, numNodes := gen.Prepare(raw, false, p)
	return &Instance{Spec: g, Scale: scale, Edges: sorted, NumNodes: numNodes}, nil
}
