package harness

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// SVG rendering of the paper's figures. Pure stdlib: hand-written SVG
// markup, one polyline per graph series, log-ish x positions for the
// processor counts (which the paper's figures space categorically).

const (
	svgW, svgH             = 720, 440
	svgMarginL, svgMarginR = 70, 150
	svgMarginT, svgMarginB = 40, 50
)

var seriesColors = []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b"}

// RenderFig6SVG draws Figure 6: construction time (ms) vs processors.
func RenderFig6SVG(w io.Writer, results []*Result) error {
	return renderSeriesSVG(w, results, "Construction time vs processors (Figure 6)",
		"time (ms)", func(m Measurement) float64 {
			return float64(m.Time.Microseconds()) / 1000
		})
}

// RenderFig7SVG draws Figure 7: speed-up (%) vs processors.
func RenderFig7SVG(w io.Writer, results []*Result) error {
	return renderSeriesSVG(w, results, "Speed-up vs processors (Figure 7)",
		"speed-up (%)", func(m Measurement) float64 {
			return m.SpeedupP
		})
}

func renderSeriesSVG(w io.Writer, results []*Result, title, yLabel string, y func(Measurement) float64) error {
	if len(results) == 0 || len(results[0].Rows) == 0 {
		return fmt.Errorf("harness: no data to plot")
	}
	var sb strings.Builder
	plotW := float64(svgW - svgMarginL - svgMarginR)
	plotH := float64(svgH - svgMarginT - svgMarginB)

	// Categorical x positions by processor-count index.
	nx := len(results[0].Rows)
	xpos := func(i int) float64 {
		if nx == 1 {
			return float64(svgMarginL) + plotW/2
		}
		return float64(svgMarginL) + plotW*float64(i)/float64(nx-1)
	}
	// Y range over all series.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, r := range results {
		for _, m := range r.Rows {
			v := y(m)
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if lo > 0 {
		lo = 0
	}
	if hi <= lo {
		hi = lo + 1
	}
	ypos := func(v float64) float64 {
		return float64(svgMarginT) + plotH*(1-(v-lo)/(hi-lo))
	}

	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif">`+"\n", svgW, svgH)
	fmt.Fprintf(&sb, `<rect width="%d" height="%d" fill="white"/>`+"\n", svgW, svgH)
	fmt.Fprintf(&sb, `<text x="%d" y="24" font-size="16" text-anchor="middle">%s</text>`+"\n", svgW/2, title)

	// Axes.
	fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		svgMarginL, svgH-svgMarginB, svgW-svgMarginR, svgH-svgMarginB)
	fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		svgMarginL, svgMarginT, svgMarginL, svgH-svgMarginB)
	fmt.Fprintf(&sb, `<text x="18" y="%d" font-size="12" transform="rotate(-90 18 %d)" text-anchor="middle">%s</text>`+"\n",
		svgH/2, svgH/2, yLabel)
	fmt.Fprintf(&sb, `<text x="%d" y="%d" font-size="12" text-anchor="middle">processors</text>`+"\n",
		(svgMarginL+svgW-svgMarginR)/2, svgH-12)

	// X tick labels.
	for i, m := range results[0].Rows {
		fmt.Fprintf(&sb, `<text x="%.1f" y="%d" font-size="11" text-anchor="middle">%d</text>`+"\n",
			xpos(i), svgH-svgMarginB+18, m.Procs)
	}
	// Y tick labels (5 ticks).
	for t := 0; t <= 4; t++ {
		v := lo + (hi-lo)*float64(t)/4
		fmt.Fprintf(&sb, `<text x="%d" y="%.1f" font-size="11" text-anchor="end">%.4g</text>`+"\n",
			svgMarginL-6, ypos(v)+4, v)
		fmt.Fprintf(&sb, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#dddddd"/>`+"\n",
			svgMarginL, ypos(v), svgW-svgMarginR, ypos(v))
	}

	// Series.
	for si, r := range results {
		color := seriesColors[si%len(seriesColors)]
		points := make([]string, 0, nx)
		for i, m := range r.Rows {
			points = append(points, fmt.Sprintf("%.1f,%.1f", xpos(i), ypos(y(m))))
		}
		fmt.Fprintf(&sb, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n",
			strings.Join(points, " "), color)
		for i, m := range r.Rows {
			fmt.Fprintf(&sb, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`+"\n",
				xpos(i), ypos(y(m)), color)
		}
		// Legend.
		ly := svgMarginT + 18*si
		fmt.Fprintf(&sb, `<rect x="%d" y="%d" width="12" height="12" fill="%s"/>`+"\n",
			svgW-svgMarginR+12, ly, color)
		fmt.Fprintf(&sb, `<text x="%d" y="%d" font-size="12">%s</text>`+"\n",
			svgW-svgMarginR+30, ly+10, r.Spec.Name)
	}
	sb.WriteString("</svg>\n")
	_, err := io.WriteString(w, sb.String())
	return err
}
