package harness

import (
	"bytes"
	"strings"
	"testing"
)

func svgFixture(t *testing.T) []*Result {
	t.Helper()
	g, _ := Find("WebNotreDame")
	inst, err := g.Generate(256, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunConstruction(inst, []int{1, 4, 16}, ModeModel, 1)
	if err != nil {
		t.Fatal(err)
	}
	return []*Result{res}
}

func TestRenderFigSVGs(t *testing.T) {
	results := svgFixture(t)
	for name, render := range map[string]func(*bytes.Buffer) error{
		"fig6": func(b *bytes.Buffer) error { return RenderFig6SVG(b, results) },
		"fig7": func(b *bytes.Buffer) error { return RenderFig7SVG(b, results) },
	} {
		var buf bytes.Buffer
		if err := render(&buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out := buf.String()
		for _, want := range []string{"<svg", "</svg>", "polyline", "WebNotreDame", "processors"} {
			if !strings.Contains(out, want) {
				t.Fatalf("%s missing %q", name, want)
			}
		}
		// One polyline per series plus markers.
		if strings.Count(out, "<circle") != 3 {
			t.Fatalf("%s: %d markers, want 3", name, strings.Count(out, "<circle"))
		}
	}
}

func TestRenderSVGEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderFig6SVG(&buf, nil); err == nil {
		t.Fatal("want error for empty results")
	}
}
