package harness

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// HumanBytes renders a byte count the way Table II does (MB/GB).
func HumanBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2f KB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}

// ms renders a duration in milliseconds with Table II's precision.
func ms(d float64) string { return fmt.Sprintf("%.3f", d) }

// RenderTable2 writes the Table II reproduction.
func RenderTable2(w io.Writer, results []*Result) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Graph\tNodes\tEdges\tEdgeList Size\tCSR\tProcs\tTime (ms)\tSpeed-Up (%)")
	for _, r := range results {
		for i, m := range r.Rows {
			name, nodes, edges, el, cs := "", "", "", "", ""
			if i == 0 {
				name = r.Spec.Name
				nodes = fmt.Sprintf("%d", r.NumNodes)
				edges = fmt.Sprintf("%d", r.NumEdges)
				el = HumanBytes(r.EdgeListSize)
				cs = HumanBytes(r.CSRSize)
			}
			speed := "-"
			if m.Procs > 1 {
				speed = fmt.Sprintf("%.2f", m.SpeedupP)
			}
			fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%d\t%s\t%s\n",
				name, nodes, edges, el, cs, m.Procs,
				ms(float64(m.Time.Microseconds())/1000), speed)
		}
	}
	return tw.Flush()
}

// RenderFig6 writes the Figure 6 series: construction time per processor
// count per graph, one column per graph.
func RenderFig6(w io.Writer, results []*Result) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	header := []string{"Procs"}
	for _, r := range results {
		header = append(header, r.Spec.Name+" (ms)")
	}
	fmt.Fprintln(tw, strings.Join(header, "\t"))
	if len(results) == 0 {
		return tw.Flush()
	}
	for i, m := range results[0].Rows {
		row := []string{fmt.Sprintf("%d", m.Procs)}
		for _, r := range results {
			row = append(row, ms(float64(r.Rows[i].Time.Microseconds())/1000))
		}
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	return tw.Flush()
}

// RenderFig7 writes the Figure 7 series: speed-up (%) per processor count
// per graph.
func RenderFig7(w io.Writer, results []*Result) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	header := []string{"Procs"}
	for _, r := range results {
		header = append(header, r.Spec.Name+" (%)")
	}
	fmt.Fprintln(tw, strings.Join(header, "\t"))
	if len(results) == 0 {
		return tw.Flush()
	}
	for i, m := range results[0].Rows {
		if m.Procs == 1 {
			continue
		}
		row := []string{fmt.Sprintf("%d", m.Procs)}
		for _, r := range results {
			row = append(row, fmt.Sprintf("%.2f", r.Rows[i].SpeedupP))
		}
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	return tw.Flush()
}

// RenderScaling writes the scaling-experiment table.
func RenderScaling(w io.Writer, graph string, points []ScalePoint) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Scale (1/x)\tNodes\tEdges\tTime (ms)\tns/edge\n")
	for _, pt := range points {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%s\t%.1f\n",
			pt.Scale, pt.NumNodes, pt.NumEdges,
			ms(float64(pt.Time.Microseconds())/1000), pt.NsPerEdge)
	}
	return tw.Flush()
}

// RenderCSV writes the full result set as CSV for plotting.
func RenderCSV(w io.Writer, results []*Result) error {
	if _, err := fmt.Fprintln(w, "graph,scale,nodes,edges,edgelist_text_bytes,edgelist_binary_bytes,csr_bytes,procs,time_ns,speedup_pct"); err != nil {
		return err
	}
	for _, r := range results {
		for _, m := range r.Rows {
			if _, err := fmt.Fprintf(w, "%s,%d,%d,%d,%d,%d,%d,%d,%d,%.2f\n",
				r.Spec.Name, r.Scale, r.NumNodes, r.NumEdges,
				r.EdgeListSize, r.EdgeListBinarySize, r.CSRSize, m.Procs, m.Time.Nanoseconds(), m.SpeedupP); err != nil {
				return err
			}
		}
	}
	return nil
}
