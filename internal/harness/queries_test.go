package harness

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunQueryComparison(t *testing.T) {
	g, _ := Find("WebNotreDame")
	inst, err := g.Generate(128, 2)
	if err != nil {
		t.Fatal(err)
	}
	results := RunQueryComparison(inst, 2000, 2, 1)
	if len(results) != 4 {
		t.Fatalf("%d structures, want 4", len(results))
	}
	var packed, edgelist *QueryResult
	for i := range results {
		r := &results[i]
		if r.NeighborQPS <= 0 || r.ExistenceQPS <= 0 || r.SizeBytes <= 0 {
			t.Fatalf("%s: non-positive metrics %+v", r.Structure, r)
		}
		switch r.Structure {
		case "packed-csr":
			packed = r
		case "edgelist":
			edgelist = r
		}
	}
	if packed == nil || edgelist == nil {
		t.Fatal("expected structures missing")
	}
	// The paper's core size claim must hold on every instance.
	if packed.SizeBytes >= edgelist.SizeBytes {
		t.Fatalf("packed CSR %d bytes >= edge list %d bytes", packed.SizeBytes, edgelist.SizeBytes)
	}

	var buf bytes.Buffer
	if err := RenderQueryComparison(&buf, g.Name, results); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"packed-csr", "edgelist", "Neighbors (q/s)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
