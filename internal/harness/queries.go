package harness

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"csrgraph/internal/baseline"
	"csrgraph/internal/csr"
	"csrgraph/internal/edgelist"
	"csrgraph/internal/query"
)

// QueryResult holds one structure's batched-query throughput.
type QueryResult struct {
	Structure    string
	SizeBytes    int64
	NeighborQPS  float64
	ExistenceQPS float64
}

// RunQueryComparison measures batched neighbor and existence throughput
// over all four storage structures on one instance — the Section V
// motivation ("the edge list consumes more time in querying compared to
// CSR"). numQueries point queries are issued per batch, procs-wide.
func RunQueryComparison(inst *Instance, numQueries, procs, reps int) []QueryResult {
	m := csr.Build(inst.Edges, inst.NumNodes, procs)
	pk := csr.PackMatrix(m, procs)
	elg := baseline.NewEdgeListGraph(inst.Edges, inst.NumNodes)
	adj := baseline.NewAdjacencyList(inst.Edges, inst.NumNodes)

	state := inst.Spec.Seed | 1
	next := func() uint32 {
		state = state*6364136223846793005 + 1442695040888963407
		return uint32(state >> 33)
	}
	nodes := make([]edgelist.NodeID, numQueries)
	probes := make([]edgelist.Edge, numQueries)
	for i := 0; i < numQueries; i++ {
		nodes[i] = next() % uint32(inst.NumNodes)
		probes[i] = edgelist.Edge{
			U: next() % uint32(inst.NumNodes),
			V: next() % uint32(inst.NumNodes),
		}
	}

	type entry struct {
		name string
		g    query.Source
		size int64
	}
	entries := []entry{
		{"csr", m, m.SizeBytes()},
		{"packed-csr", pk, pk.SizeBytes()},
		{"edgelist", elg, elg.SizeBytes()},
		{"adjlist", adj, adj.SizeBytes()},
	}
	out := make([]QueryResult, 0, len(entries))
	for _, e := range entries {
		nt := medianOf(reps, func() { query.NeighborsBatch(e.g, nodes, procs) })
		et := medianOf(reps, func() { query.EdgesExistBatchBinary(e.g, probes, procs) })
		out = append(out, QueryResult{
			Structure:    e.name,
			SizeBytes:    e.size,
			NeighborQPS:  qps(numQueries, nt),
			ExistenceQPS: qps(numQueries, et),
		})
	}
	return out
}

func qps(n int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(n) / d.Seconds()
}

// RenderQueryComparison writes the query-throughput table.
func RenderQueryComparison(w io.Writer, graph string, results []QueryResult) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Structure\tSize\tNeighbors (q/s)\tExistence (q/s)\n")
	for _, r := range results {
		fmt.Fprintf(tw, "%s\t%s\t%.0f\t%.0f\n",
			r.Structure, HumanBytes(r.SizeBytes), r.NeighborQPS, r.ExistenceQPS)
	}
	return tw.Flush()
}
