package harness

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestFindRegistry(t *testing.T) {
	g, err := Find("Orkut")
	if err != nil || g.PaperEdges != 117_185_083 {
		t.Fatalf("Find(Orkut) = %+v, %v", g, err)
	}
	if _, err := Find("nope"); err == nil {
		t.Fatal("want error for unknown graph")
	}
	if len(Registry) != 4 {
		t.Fatalf("registry has %d graphs, want 4", len(Registry))
	}
}

func TestGenerateScaled(t *testing.T) {
	g, _ := Find("WebNotreDame")
	inst, err := g.Generate(64, 2)
	if err != nil {
		t.Fatal(err)
	}
	if inst.NumNodes == 0 || len(inst.Edges) == 0 {
		t.Fatal("empty instance")
	}
	if !inst.Edges.IsSortedByUV() {
		t.Fatal("instance edges not sorted")
	}
	// Edge count should be close to the scaled paper figure (dedup removes
	// some duplicates, so allow slack).
	want := g.PaperEdges / 64
	if len(inst.Edges) < want/2 || len(inst.Edges) > want {
		t.Fatalf("edges = %d, want about %d", len(inst.Edges), want)
	}
	if _, err := g.Generate(0, 1); err == nil {
		t.Fatal("want error for scale 0")
	}
	if _, err := g.Generate(1<<30, 1); err == nil {
		t.Fatal("want error for absurd scale")
	}
}

func TestRmatScaleFor(t *testing.T) {
	cases := map[int]int{2: 1, 3: 2, 4: 2, 5: 3, 1024: 10, 1025: 11}
	for n, want := range cases {
		if got := rmatScaleFor(n); got != want {
			t.Errorf("rmatScaleFor(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestParseMode(t *testing.T) {
	if m, err := ParseMode("model"); err != nil || m != ModeModel {
		t.Fatal("model mode should parse")
	}
	if m, err := ParseMode("wallclock"); err != nil || m != ModeWallClock {
		t.Fatal("wallclock mode should parse")
	}
	if _, err := ParseMode("magic"); err == nil {
		t.Fatal("want error for unknown mode")
	}
}

func TestCostModelShape(t *testing.T) {
	// Calibrate a synthetic model and verify the Figure 6/7 shape: time
	// strictly decreases with p, with diminishing returns.
	cm := Calibrate(100*time.Millisecond, 100_000, 1_500_000)
	var prev time.Duration
	var prevGain float64
	for i, p := range []int{1, 4, 8, 16, 64} {
		tp := cm.SimulateConstruction(100_000, 1_500_000, p)
		if i > 0 {
			if tp >= prev {
				t.Fatalf("T(%d) = %v not below T(prev) = %v", p, tp, prev)
			}
			gain := float64(prev - tp)
			if i > 1 && gain > prevGain {
				t.Fatalf("gain grew from %v to %v at p=%d; expected diminishing returns", prevGain, gain, p)
			}
			prevGain = gain
		}
		prev = tp
	}
	// p=1 prediction matches the calibration input (within float rounding
	// of the per-op cost; no barriers/spawns are charged at p=1).
	got := cm.SimulateConstruction(100_000, 1_500_000, 1)
	if diff := got - 100*time.Millisecond; diff < -time.Millisecond || diff > time.Millisecond {
		t.Fatalf("p=1 model = %v, want ~100ms", got)
	}
	// Speed-up at 64 processors lands in the paper's observed band (60-97%).
	t64 := cm.SimulateConstruction(100_000, 1_500_000, 64)
	speedup := 100 * float64(100*time.Millisecond-t64) / float64(100*time.Millisecond)
	if speedup < 60 || speedup > 99 {
		t.Fatalf("model speed-up at p=64 = %.1f%%, outside the paper's band", speedup)
	}
}

func TestCostModelDegenerate(t *testing.T) {
	cm := Calibrate(0, 0, 0)
	if d := cm.SimulateConstruction(0, 0, 4); d < 0 {
		t.Fatalf("negative simulated time %v", d)
	}
	if d := cm.SimulateConstruction(10, 10, 0); d < 0 {
		t.Fatal("p=0 must clamp to 1")
	}
}

func TestMedianOf(t *testing.T) {
	calls := 0
	medianOf(5, func() { calls++ })
	if calls != 5 {
		t.Fatalf("ran %d times, want 5", calls)
	}
	calls = 0
	medianOf(0, func() { calls++ }) // clamps to 1
	if calls != 1 {
		t.Fatalf("ran %d times, want 1", calls)
	}
	calls = 0
	medianOf(2, func() { calls++ }) // forced odd
	if calls != 3 {
		t.Fatalf("ran %d times, want 3", calls)
	}
}

func TestRunConstructionModelMode(t *testing.T) {
	g, _ := Find("WebNotreDame")
	inst, err := g.Generate(64, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunConstruction(inst, []int{1, 4, 8}, ModeModel, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	if res.CSRSize <= 0 || res.CSRSize >= res.EdgeListSize {
		t.Fatalf("CSR size %d should be positive and below edge list %d", res.CSRSize, res.EdgeListSize)
	}
	if res.Rows[0].SpeedupP != 0 {
		t.Fatal("p=1 row must have no speedup")
	}
	if res.Rows[1].SpeedupP <= 0 || res.Rows[2].SpeedupP <= res.Rows[1].SpeedupP {
		t.Fatalf("speedups not increasing: %+v", res.Rows)
	}
}

func TestRunConstructionWallClockMode(t *testing.T) {
	g, _ := Find("WebNotreDame")
	inst, err := g.Generate(256, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunConstruction(inst, []int{1, 2}, ModeWallClock, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range res.Rows {
		if m.Time <= 0 {
			t.Fatalf("non-positive wall time at p=%d", m.Procs)
		}
	}
}

func TestRunScaling(t *testing.T) {
	g, _ := Find("WebNotreDame")
	points, err := RunScaling(g, []int{256, 128}, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("%d points", len(points))
	}
	if points[1].NumEdges <= points[0].NumEdges {
		t.Fatal("smaller divisor should give more edges")
	}
	for _, pt := range points {
		if pt.Time <= 0 || pt.NsPerEdge <= 0 {
			t.Fatalf("bad point %+v", pt)
		}
	}
	var buf bytes.Buffer
	if err := RenderScaling(&buf, g.Name, points); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ns/edge") {
		t.Fatalf("render: %s", buf.String())
	}
	if _, err := RunScaling(g, []int{1 << 30}, 1, 2); err == nil {
		t.Fatal("want error for absurd scale")
	}
}

func TestRenderers(t *testing.T) {
	g, _ := Find("WebNotreDame")
	inst, err := g.Generate(128, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunConstruction(inst, []int{1, 4, 64}, ModeModel, 1)
	if err != nil {
		t.Fatal(err)
	}
	results := []*Result{res}

	var buf bytes.Buffer
	if err := RenderTable2(&buf, results); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"WebNotreDame", "Speed-Up", "Procs"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table2 output missing %q:\n%s", want, out)
		}
	}

	buf.Reset()
	if err := RenderFig6(&buf, results); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "WebNotreDame (ms)") {
		t.Fatalf("fig6 output: %s", buf.String())
	}

	buf.Reset()
	if err := RenderFig7(&buf, results); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "\n1\t") {
		t.Fatal("fig7 must omit the p=1 row")
	}

	buf.Reset()
	if err := RenderCSV(&buf, results); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+3 {
		t.Fatalf("csv has %d lines, want 4", len(lines))
	}
}

func TestHumanBytes(t *testing.T) {
	cases := map[int64]string{
		512:     "512 B",
		2048:    "2.00 KB",
		5 << 20: "5.00 MB",
		3 << 30: "3.00 GB",
	}
	for n, want := range cases {
		if got := HumanBytes(n); got != want {
			t.Errorf("HumanBytes(%d) = %q, want %q", n, got, want)
		}
	}
}
