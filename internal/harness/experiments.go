package harness

import (
	"fmt"
	"sort"
	"time"

	"csrgraph/internal/csr"
)

// Mode selects how construction time at p > 1 is obtained.
type Mode string

const (
	// ModeWallClock times the real goroutine implementation with time.Now.
	// Honest, but cannot show parallel speed-up on a machine with fewer
	// cores than p.
	ModeWallClock Mode = "wallclock"
	// ModeModel runs the real implementation once at p=1 for calibration
	// and derives T(p) from the work-span cost model (costmodel.go).
	ModeModel Mode = "model"
)

// ParseMode validates a mode string.
func ParseMode(s string) (Mode, error) {
	switch Mode(s) {
	case ModeWallClock, ModeModel:
		return Mode(s), nil
	}
	return "", fmt.Errorf("harness: unknown mode %q (want wallclock or model)", s)
}

// Measurement is one (graph, p) cell of Table II.
type Measurement struct {
	Procs    int
	Time     time.Duration
	SpeedupP float64 // percent, Table II's last column; 0 for p == 1
}

// Result holds everything Table II reports for one graph.
type Result struct {
	Spec     GraphSpec
	Scale    int
	NumNodes int
	NumEdges int
	// EdgeListSize is the SNAP-text footprint (the paper's accounting for
	// Table II's fourth column); EdgeListBinarySize is the 8-bytes-per-edge
	// in-memory form.
	EdgeListSize       int64
	EdgeListBinarySize int64
	CSRSize            int64
	Rows               []Measurement
}

// medianOf runs fn k times and returns the median duration. k is forced
// odd and at least 1.
func medianOf(k int, fn func()) time.Duration {
	if k < 1 {
		k = 1
	}
	if k%2 == 0 {
		k++
	}
	times := make([]time.Duration, k)
	for i := range times {
		start := time.Now()
		fn()
		times[i] = time.Since(start)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times[k/2]
}

// RunConstruction measures packed-CSR construction for one instance across
// the processor sweep. reps is the median-of-k repetition count.
func RunConstruction(inst *Instance, procs []int, mode Mode, reps int) (*Result, error) {
	res := &Result{
		Spec:               inst.Spec,
		Scale:              inst.Scale,
		NumNodes:           inst.NumNodes,
		NumEdges:           len(inst.Edges),
		EdgeListSize:       inst.Edges.TextSizeBytes(),
		EdgeListBinarySize: inst.Edges.SizeBytes(),
	}
	pk := csr.BuildPacked(inst.Edges, inst.NumNodes, 1)
	res.CSRSize = pk.SizeBytes()

	t1 := medianOf(reps, func() { csr.BuildPacked(inst.Edges, inst.NumNodes, 1) })
	model := Calibrate(t1, inst.NumNodes, len(inst.Edges))

	for _, p := range procs {
		var t time.Duration
		switch {
		case p == 1:
			t = t1
		case mode == ModeWallClock:
			t = medianOf(reps, func() { csr.BuildPacked(inst.Edges, inst.NumNodes, p) })
		case mode == ModeModel:
			t = model.SimulateConstruction(inst.NumNodes, len(inst.Edges), p)
		default:
			return nil, fmt.Errorf("harness: unknown mode %q", mode)
		}
		m := Measurement{Procs: p, Time: t}
		if p > 1 && t1 > 0 {
			m.SpeedupP = 100 * float64(t1-t) / float64(t1)
		}
		res.Rows = append(res.Rows, m)
	}
	return res, nil
}

// ScalePoint is one measurement of the scaling experiment.
type ScalePoint struct {
	Scale    int
	NumNodes int
	NumEdges int
	Time     time.Duration
	// NsPerEdge is Time divided by the edge count — flat when construction
	// is linear in m, which the paper's algorithms are.
	NsPerEdge float64
}

// RunScaling measures p=1 packed-CSR construction for one registry graph
// across a series of scale divisors (paper size / scale), demonstrating
// the linear-work behaviour of the construction pipeline.
func RunScaling(spec GraphSpec, scales []int, reps, genProcs int) ([]ScalePoint, error) {
	out := make([]ScalePoint, 0, len(scales))
	for _, s := range scales {
		inst, err := spec.Generate(s, genProcs)
		if err != nil {
			return nil, err
		}
		t := medianOf(reps, func() { csr.BuildPacked(inst.Edges, inst.NumNodes, 1) })
		pt := ScalePoint{
			Scale:    s,
			NumNodes: inst.NumNodes,
			NumEdges: len(inst.Edges),
			Time:     t,
		}
		if pt.NumEdges > 0 {
			pt.NsPerEdge = float64(t.Nanoseconds()) / float64(pt.NumEdges)
		}
		out = append(out, pt)
	}
	return out, nil
}

// RunAll generates every registry graph at the given scale and measures the
// full Table II sweep.
func RunAll(scale int, procs []int, mode Mode, reps, genProcs int) ([]*Result, error) {
	var out []*Result
	for _, spec := range Registry {
		inst, err := spec.Generate(scale, genProcs)
		if err != nil {
			return nil, fmt.Errorf("harness: generate %s: %w", spec.Name, err)
		}
		res, err := RunConstruction(inst, procs, mode, reps)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}
