// Package stream maintains a CSR graph under a stream of edge additions
// and deletions — the paper's motivating scenario of networks that change
// "due to graph evolution" faster than they can be recompressed, and the
// streaming setting of the authors' prior work (refs [3], [4]).
//
// CSR is a static format: one inserted edge shifts the whole neighbor
// array. The Builder therefore buffers updates and folds them in batch:
// Flush merges the pending additions and deletions into every affected
// row in parallel and rebuilds the offset array with the parallel prefix
// sum — the same machinery as initial construction, amortized over the
// batch.
package stream

import (
	"sync"

	"csrgraph/internal/csr"
	"csrgraph/internal/edgelist"
	"csrgraph/internal/parallel"
	"csrgraph/internal/prefixsum"
)

// Builder accumulates edge updates against a base CSR. It is safe for
// concurrent use; Flush and Snapshot serialize against updates.
type Builder struct {
	mu       sync.Mutex
	base     *csr.Matrix
	numNodes int
	procs    int
	adds     map[edgelist.Edge]struct{}
	dels     map[edgelist.Edge]struct{}
}

// NewBuilder starts from an existing CSR (may be nil for an empty graph).
// numNodes fixes the current node-id space; additions may extend it.
func NewBuilder(base *csr.Matrix, numNodes, procs int) *Builder {
	if base == nil {
		base = &csr.Matrix{RowOffsets: make([]uint32, numNodes+1)}
	}
	if n := base.NumNodes(); n > numNodes {
		numNodes = n
	}
	if procs < 1 {
		procs = 1
	}
	return &Builder{
		base:     base,
		numNodes: numNodes,
		procs:    procs,
		adds:     make(map[edgelist.Edge]struct{}),
		dels:     make(map[edgelist.Edge]struct{}),
	}
}

// Add buffers edge insertions. Adding an edge cancels a pending deletion
// of it.
func (b *Builder) Add(edges ...edgelist.Edge) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, e := range edges {
		delete(b.dels, e)
		b.adds[e] = struct{}{}
		if int(e.U) >= b.numNodes {
			b.numNodes = int(e.U) + 1
		}
		if int(e.V) >= b.numNodes {
			b.numNodes = int(e.V) + 1
		}
	}
}

// Delete buffers edge removals. Deleting an edge cancels a pending
// insertion of it.
func (b *Builder) Delete(edges ...edgelist.Edge) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, e := range edges {
		delete(b.adds, e)
		b.dels[e] = struct{}{}
	}
}

// Pending returns the buffered addition and deletion counts.
func (b *Builder) Pending() (adds, dels int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.adds), len(b.dels)
}

// NumNodes returns the current node-id space (including buffered nodes).
func (b *Builder) NumNodes() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.numNodes
}

// Flush folds all pending updates into the base CSR and returns it. After
// Flush the pending buffers are empty. The merge is row-parallel:
// additions are grouped per source, each affected row is merged (base ∪
// adds) \ dels, untouched rows are reused as views, and the offsets are
// rebuilt with the parallel prefix sum.
func (b *Builder) Flush() *csr.Matrix {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.adds) == 0 && len(b.dels) == 0 && b.base.NumNodes() == b.numNodes {
		return b.base
	}
	n := b.numNodes
	// Group pending updates by source row.
	addRows := make(map[uint32][]uint32, len(b.adds))
	for e := range b.adds {
		addRows[e.U] = append(addRows[e.U], e.V)
	}
	delRows := make(map[uint32]map[uint32]struct{}, len(b.dels))
	for e := range b.dels {
		set := delRows[e.U]
		if set == nil {
			set = make(map[uint32]struct{})
			delRows[e.U] = set
		}
		set[e.V] = struct{}{}
	}
	rows := make([][]uint32, n)
	baseN := b.base.NumNodes()
	parallel.For(n, b.procs, func(_ int, r parallel.Range) {
		for u := r.Start; u < r.End; u++ {
			var baseRow []uint32
			if u < baseN {
				baseRow = b.base.Neighbors(uint32(u))
			}
			adds, hasAdds := addRows[uint32(u)]
			dels := delRows[uint32(u)]
			if !hasAdds && dels == nil {
				rows[u] = baseRow // view, no copy
				continue
			}
			if hasAdds {
				sortUint32(adds)
			}
			rows[u] = mergeRow(baseRow, adds, dels)
		}
	})
	deg := make([]uint32, n)
	parallel.For(n, b.procs, func(_ int, r parallel.Range) {
		for u := r.Start; u < r.End; u++ {
			deg[u] = uint32(len(rows[u]))
		}
	})
	off := prefixsum.Offsets(deg, b.procs)
	cols := make([]uint32, off[n])
	parallel.For(n, b.procs, func(_ int, r parallel.Range) {
		for u := r.Start; u < r.End; u++ {
			copy(cols[off[u]:off[u+1]], rows[u])
		}
	})
	b.base = &csr.Matrix{RowOffsets: off, Cols: cols}
	b.adds = make(map[edgelist.Edge]struct{})
	b.dels = make(map[edgelist.Edge]struct{})
	return b.base
}

// Snapshot flushes and returns the current CSR.
func (b *Builder) Snapshot() *csr.Matrix { return b.Flush() }

// HasEdge answers an existence query against the logical current state
// (base plus pending updates) without flushing.
func (b *Builder) HasEdge(u, v edgelist.NodeID) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	e := edgelist.Edge{U: u, V: v}
	if _, ok := b.adds[e]; ok {
		return true
	}
	if _, ok := b.dels[e]; ok {
		return false
	}
	if int(u) >= b.base.NumNodes() {
		return false
	}
	return b.base.HasEdgeBinary(u, v)
}

// mergeRow returns (base ∪ adds) \ dels as a sorted deduplicated slice.
// base and adds must be sorted.
func mergeRow(base, adds []uint32, dels map[uint32]struct{}) []uint32 {
	out := make([]uint32, 0, len(base)+len(adds))
	i, j := 0, 0
	push := func(v uint32) {
		if _, dead := dels[v]; dead {
			return
		}
		if len(out) > 0 && out[len(out)-1] == v {
			return
		}
		out = append(out, v)
	}
	for i < len(base) && j < len(adds) {
		switch {
		case base[i] == adds[j]:
			push(base[i])
			i++
			j++
		case base[i] < adds[j]:
			push(base[i])
			i++
		default:
			push(adds[j])
			j++
		}
	}
	for ; i < len(base); i++ {
		push(base[i])
	}
	for ; j < len(adds); j++ {
		push(adds[j])
	}
	return out
}

// sortUint32 sorts ascending in place (rows in one batch are short;
// insertion sort with a shell gap handles the occasional long one).
func sortUint32(xs []uint32) {
	for gap := len(xs) / 2; gap > 0; gap /= 2 {
		for i := gap; i < len(xs); i++ {
			for j := i; j >= gap && xs[j] < xs[j-gap]; j -= gap {
				xs[j], xs[j-gap] = xs[j-gap], xs[j]
			}
		}
	}
}
