package stream

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"

	"csrgraph/internal/csr"
	"csrgraph/internal/edgelist"
)

func baseCSR() *csr.Matrix {
	l := edgelist.List{{U: 0, V: 1}, {U: 0, V: 3}, {U: 1, V: 2}}
	return csr.Build(l, 4, 1)
}

func TestFlushAdds(t *testing.T) {
	b := NewBuilder(baseCSR(), 4, 2)
	b.Add(edgelist.Edge{U: 0, V: 2}, edgelist.Edge{U: 2, V: 0})
	m := b.Flush()
	if !reflect.DeepEqual(m.Neighbors(0), []uint32{1, 2, 3}) {
		t.Fatalf("Neighbors(0) = %v", m.Neighbors(0))
	}
	if !m.HasEdge(2, 0) {
		t.Fatal("added edge missing")
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if a, d := b.Pending(); a != 0 || d != 0 {
		t.Fatal("pending not cleared")
	}
}

func TestFlushDeletes(t *testing.T) {
	b := NewBuilder(baseCSR(), 4, 2)
	b.Delete(edgelist.Edge{U: 0, V: 3})
	m := b.Flush()
	if m.HasEdge(0, 3) {
		t.Fatal("deleted edge survived")
	}
	if !reflect.DeepEqual(m.Neighbors(0), []uint32{1}) {
		t.Fatalf("Neighbors(0) = %v", m.Neighbors(0))
	}
}

func TestAddCancelsDeleteAndViceVersa(t *testing.T) {
	b := NewBuilder(baseCSR(), 4, 1)
	e := edgelist.Edge{U: 0, V: 1}
	b.Delete(e)
	b.Add(e)
	if !b.Flush().HasEdge(0, 1) {
		t.Fatal("add after delete should keep the edge")
	}
	b.Add(edgelist.Edge{U: 3, V: 0})
	b.Delete(edgelist.Edge{U: 3, V: 0})
	if b.Flush().HasEdge(3, 0) {
		t.Fatal("delete after add should drop the edge")
	}
}

func TestNodeSpaceGrowth(t *testing.T) {
	b := NewBuilder(baseCSR(), 4, 2)
	b.Add(edgelist.Edge{U: 9, V: 0})
	if b.NumNodes() != 10 {
		t.Fatalf("NumNodes = %d, want 10", b.NumNodes())
	}
	m := b.Flush()
	if m.NumNodes() != 10 || !m.HasEdge(9, 0) {
		t.Fatal("flush did not grow node space")
	}
}

func TestNilBase(t *testing.T) {
	b := NewBuilder(nil, 3, 2)
	b.Add(edgelist.Edge{U: 0, V: 2})
	m := b.Flush()
	if m.NumNodes() != 3 || !m.HasEdge(0, 2) {
		t.Fatal("nil base flush wrong")
	}
}

func TestHasEdgeUnflushed(t *testing.T) {
	b := NewBuilder(baseCSR(), 4, 1)
	if !b.HasEdge(0, 1) {
		t.Fatal("base edge invisible")
	}
	b.Add(edgelist.Edge{U: 2, V: 3})
	if !b.HasEdge(2, 3) {
		t.Fatal("pending add invisible")
	}
	b.Delete(edgelist.Edge{U: 0, V: 1})
	if b.HasEdge(0, 1) {
		t.Fatal("pending delete invisible")
	}
	if b.HasEdge(99, 0) {
		t.Fatal("out-of-range node must be edgeless")
	}
}

func TestFlushNoopReturnsSameMatrix(t *testing.T) {
	base := baseCSR()
	b := NewBuilder(base, 4, 1)
	if b.Flush() != base {
		t.Fatal("no-op flush should return the base unchanged")
	}
}

func TestDeleteNonexistentIsNoop(t *testing.T) {
	b := NewBuilder(baseCSR(), 4, 2)
	b.Delete(edgelist.Edge{U: 3, V: 3})
	m := b.Flush()
	if m.NumEdges() != 3 {
		t.Fatalf("edge count changed: %d", m.NumEdges())
	}
}

func TestConcurrentUpdates(t *testing.T) {
	b := NewBuilder(nil, 100, 4)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				b.Add(edgelist.Edge{U: uint32(w), V: uint32(i % 100)})
			}
		}(w)
	}
	wg.Wait()
	m := b.Flush()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 8; w++ {
		if m.Degree(uint32(w)) != 100 {
			t.Fatalf("row %d degree = %d, want 100", w, m.Degree(uint32(w)))
		}
	}
}

// Property: a random interleaving of adds and deletes flushed in batches
// equals the set-based reference.
func TestQuickStreamMatchesSet(t *testing.T) {
	f := func(ops []uint16, flushMask uint8) bool {
		const n = 20
		b := NewBuilder(nil, n, 2)
		ref := map[edgelist.Edge]struct{}{}
		for i := 0; i+2 < len(ops); i += 3 {
			e := edgelist.Edge{U: uint32(ops[i]) % n, V: uint32(ops[i+1]) % n}
			if ops[i+2]%2 == 0 {
				b.Add(e)
				ref[e] = struct{}{}
			} else {
				b.Delete(e)
				delete(ref, e)
			}
			if ops[i+2]%uint16(flushMask|1) == 0 {
				b.Flush() // intermediate flushes must not change semantics
			}
		}
		m := b.Flush()
		if m.NumEdges() != len(ref) {
			return false
		}
		for e := range ref {
			if !m.HasEdge(e.U, e.V) {
				return false
			}
		}
		return m.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestLargeBatchMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	var l edgelist.List
	for i := 0; i < 5000; i++ {
		l = append(l, edgelist.Edge{U: rng.Uint32() % 500, V: rng.Uint32() % 500})
	}
	l.SortByUV(1)
	l = l.Dedup()
	base := csr.Build(l, 500, 2)
	b := NewBuilder(base, 500, 4)
	// Delete a third of the edges, add a fresh batch.
	ref := map[edgelist.Edge]struct{}{}
	for _, e := range l {
		ref[e] = struct{}{}
	}
	for i, e := range l {
		if i%3 == 0 {
			b.Delete(e)
			delete(ref, e)
		}
	}
	for i := 0; i < 2000; i++ {
		e := edgelist.Edge{U: rng.Uint32() % 500, V: rng.Uint32() % 500}
		b.Add(e)
		ref[e] = struct{}{}
	}
	m := b.Flush()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.NumEdges() != len(ref) {
		t.Fatalf("edges = %d, want %d", m.NumEdges(), len(ref))
	}
	for e := range ref {
		if !m.HasEdge(e.U, e.V) {
			t.Fatalf("edge %v missing after merge", e)
		}
	}
}
