package gen

import (
	"math"
	"reflect"
	"testing"

	"csrgraph/internal/degree"
	"csrgraph/internal/edgelist"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := newRNG(42), newRNG(42)
	for i := 0; i < 100; i++ {
		if a.next() != b.next() {
			t.Fatal("same seed produced different streams")
		}
	}
	if newRNG(1).next() == newRNG(2).next() {
		t.Fatal("different seeds produced identical first values")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := newRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.float64()
		if f < 0 || f >= 1 {
			t.Fatalf("float64 out of range: %g", f)
		}
	}
}

func TestRMATDeterministicAndInRange(t *testing.T) {
	l1, err := RMAT(10, 5000, DefaultRMAT, 99, 4)
	if err != nil {
		t.Fatal(err)
	}
	l2, _ := RMAT(10, 5000, DefaultRMAT, 99, 4)
	if !reflect.DeepEqual(l1, l2) {
		t.Fatal("RMAT not deterministic for fixed seed")
	}
	for _, e := range l1 {
		if e.U >= 1024 || e.V >= 1024 {
			t.Fatalf("edge (%d,%d) outside 2^10 nodes", e.U, e.V)
		}
	}
	if len(l1) != 5000 {
		t.Fatalf("got %d edges", len(l1))
	}
}

func TestRMATSkewedDegrees(t *testing.T) {
	// Social-network parameters must produce a heavy-tailed degree
	// distribution: max degree far above the mean.
	raw, err := RMAT(12, 40000, DefaultRMAT, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	l, n := Prepare(raw, false, 2)
	deg := degree.Sequential(l, n)
	max := degree.MaxDegree(deg)
	mean := float64(len(l)) / float64(n)
	if float64(max) < 10*mean {
		t.Fatalf("max degree %d not heavy-tailed vs mean %.1f", max, mean)
	}
}

func TestRMATErrors(t *testing.T) {
	if _, err := RMAT(0, 10, DefaultRMAT, 1, 1); err == nil {
		t.Fatal("want scale error")
	}
	if _, err := RMAT(40, 10, DefaultRMAT, 1, 1); err == nil {
		t.Fatal("want scale error")
	}
	if _, err := RMAT(5, 10, RMATParams{A: 0.9, B: 0.9, C: 0, D: 0}, 1, 1); err == nil {
		t.Fatal("want probability-sum error")
	}
	if _, err := RMAT(5, 10, RMATParams{A: -0.5, B: 0.5, C: 0.5, D: 0.5}, 1, 1); err == nil {
		t.Fatal("want negative probability error")
	}
}

func TestChungLuPowerLaw(t *testing.T) {
	l, err := ChungLu(2000, 30000, 2.2, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range l {
		if e.U >= 2000 || e.V >= 2000 {
			t.Fatalf("node out of range: %v", e)
		}
	}
	// Node 0 has the largest weight: its degree must dominate the median
	// node's.
	sorted, n := Prepare(l, false, 2)
	deg := degree.Sequential(sorted, n)
	if deg[0] < 5*deg[len(deg)/2]+5 {
		t.Fatalf("weight-0 degree %d vs median-node degree %d: not skewed", deg[0], deg[len(deg)/2])
	}
}

func TestChungLuErrors(t *testing.T) {
	if _, err := ChungLu(0, 10, 2.2, 1, 1); err == nil {
		t.Fatal("want node-count error")
	}
	if _, err := ChungLu(10, 10, 1.0, 1, 1); err == nil {
		t.Fatal("want gamma error")
	}
}

func TestErdosRenyiUniform(t *testing.T) {
	l, err := ErdosRenyi(100, 50000, 6, 4)
	if err != nil {
		t.Fatal(err)
	}
	sorted, n := Prepare(l, false, 2)
	deg := degree.Sequential(sorted, n)
	mean := float64(len(sorted)) / float64(n)
	// Every node's degree should be within a few sigma of the mean.
	for u, d := range deg {
		if math.Abs(float64(d)-mean) > 6*math.Sqrt(mean) {
			t.Fatalf("node %d degree %d too far from mean %.1f for uniform graph", u, d, mean)
		}
	}
	if _, err := ErdosRenyi(0, 5, 1, 1); err == nil {
		t.Fatal("want node-count error")
	}
}

func TestRing(t *testing.T) {
	l := Ring(5)
	want := edgelist.List{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 4, V: 0}}
	if !reflect.DeepEqual(l, want) {
		t.Fatalf("Ring(5) = %v", l)
	}
}

func TestPrepare(t *testing.T) {
	raw := edgelist.List{{U: 3, V: 1}, {U: 0, V: 2}, {U: 3, V: 1}}
	l, n := Prepare(raw, false, 2)
	if n != 4 || len(l) != 2 || !l.IsSortedByUV() {
		t.Fatalf("Prepare: n=%d l=%v", n, l)
	}
	sym, _ := Prepare(raw, true, 2)
	if len(sym) != 4 { // (0,2),(1,3),(2,0),(3,1)
		t.Fatalf("symmetrized: %v", sym)
	}
}

func TestTemporalStream(t *testing.T) {
	ev, err := TemporalStream(50, 200, 20, 10, 7, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !ev.IsSorted() {
		t.Fatal("stream not sorted")
	}
	if ev.NumFrames() != 10 {
		t.Fatalf("NumFrames = %d, want 10", ev.NumFrames())
	}
	for i := 1; i < len(ev); i++ {
		if ev[i] == ev[i-1] {
			t.Fatal("duplicate event within a frame survived dedup")
		}
	}
	// Deterministic.
	ev2, _ := TemporalStream(50, 200, 20, 10, 7, 2)
	if !reflect.DeepEqual(ev, ev2) {
		t.Fatal("TemporalStream not deterministic")
	}
	if _, err := TemporalStream(1, 5, 5, 5, 1, 1); err == nil {
		t.Fatal("want node-count error")
	}
	if _, err := TemporalStream(10, 5, 5, 0, 1, 1); err == nil {
		t.Fatal("want frame-count error")
	}
}

func TestGeneratorsIndependentOfP(t *testing.T) {
	// The per-chunk seeds depend only on the chunk index, so the same p
	// yields the same stream; different p is allowed to differ, but p=1 runs
	// must be stable.
	a, _ := ErdosRenyi(64, 1000, 5, 1)
	b, _ := ErdosRenyi(64, 1000, 5, 1)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("p=1 generation unstable")
	}
}
