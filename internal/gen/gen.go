// Package gen produces deterministic synthetic graph workloads. It stands
// in for the paper's SNAP datasets (LiveJournal, Pokec, Orkut,
// WebNotreDame), which cannot be downloaded in an offline build: R-MAT
// (Kronecker) graphs reproduce the heavy-tailed degree distribution of
// social networks, Chung-Lu reproduces an explicit power law, and
// Erdős-Rényi / ring graphs give uniform and structured extremes for
// testing. All generators are seeded and platform-stable.
package gen

import (
	"fmt"
	"math"

	"csrgraph/internal/edgelist"
	"csrgraph/internal/parallel"
)

// RMATParams configures an R-MAT generator. Probabilities must be
// non-negative and sum to ~1; the defaults (0.57, 0.19, 0.19, 0.05) are the
// standard "social network like" setting used by Graph500.
type RMATParams struct {
	A, B, C, D float64
}

// DefaultRMAT is the Graph500 social-network parameterization.
var DefaultRMAT = RMATParams{A: 0.57, B: 0.19, C: 0.19, D: 0.05}

// Validate checks the probabilities.
func (p RMATParams) Validate() error {
	if p.A < 0 || p.B < 0 || p.C < 0 || p.D < 0 {
		return fmt.Errorf("gen: negative RMAT probability %+v", p)
	}
	if s := p.A + p.B + p.C + p.D; math.Abs(s-1) > 1e-9 {
		return fmt.Errorf("gen: RMAT probabilities sum to %g, want 1", s)
	}
	return nil
}

// RMAT generates numEdges directed edges over 2^scale nodes with the given
// parameters, using p processors (each generates an independent slice of
// the stream from a derived seed). The result is unsorted and may contain
// duplicates and self-loops, like a raw crawl.
func RMAT(scale int, numEdges int, params RMATParams, seed uint64, p int) (edgelist.List, error) {
	if scale < 1 || scale > 31 {
		return nil, fmt.Errorf("gen: RMAT scale %d out of range [1,31]", scale)
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	out := make(edgelist.List, numEdges)
	parallel.For(numEdges, p, func(c int, r parallel.Range) {
		rng := newRNG(seed ^ (uint64(c)+1)*0xA5A5A5A5A5A5A5A5)
		for i := r.Start; i < r.End; i++ {
			out[i] = rmatEdge(scale, params, rng)
		}
	})
	return out, nil
}

func rmatEdge(scale int, params RMATParams, rng *rng) edgelist.Edge {
	var u, v uint32
	for level := 0; level < scale; level++ {
		r := rng.float64()
		switch {
		case r < params.A:
			// top-left: no bits set
		case r < params.A+params.B:
			v |= 1 << level
		case r < params.A+params.B+params.C:
			u |= 1 << level
		default:
			u |= 1 << level
			v |= 1 << level
		}
	}
	return edgelist.Edge{U: u, V: v}
}

// ChungLu generates an undirected-style power-law graph: node weights
// w_i ∝ (i+1)^(-1/(gamma-1)) and each of numEdges edges picks both
// endpoints with probability proportional to weight. gamma around 2.1-2.5
// matches social networks. The result is unsorted with possible duplicates.
func ChungLu(numNodes, numEdges int, gamma float64, seed uint64, p int) (edgelist.List, error) {
	if numNodes < 1 {
		return nil, fmt.Errorf("gen: ChungLu needs at least one node")
	}
	if gamma <= 1 {
		return nil, fmt.Errorf("gen: ChungLu gamma %g must exceed 1", gamma)
	}
	// Build the cumulative weight table once; sampling is a binary search.
	alpha := 1 / (gamma - 1)
	cum := make([]float64, numNodes)
	total := 0.0
	for i := range cum {
		total += math.Pow(float64(i+1), -alpha)
		cum[i] = total
	}
	sample := func(rng *rng) uint32 {
		x := rng.float64() * total
		lo, hi := 0, numNodes-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return uint32(lo)
	}
	out := make(edgelist.List, numEdges)
	parallel.For(numEdges, p, func(c int, r parallel.Range) {
		rng := newRNG(seed ^ (uint64(c)+1)*0xC3C3C3C3C3C3C3C3)
		for i := r.Start; i < r.End; i++ {
			out[i] = edgelist.Edge{U: sample(rng), V: sample(rng)}
		}
	})
	return out, nil
}

// ErdosRenyi generates numEdges uniformly random directed edges over
// numNodes nodes.
func ErdosRenyi(numNodes, numEdges int, seed uint64, p int) (edgelist.List, error) {
	if numNodes < 1 {
		return nil, fmt.Errorf("gen: ErdosRenyi needs at least one node")
	}
	out := make(edgelist.List, numEdges)
	parallel.For(numEdges, p, func(c int, r parallel.Range) {
		rng := newRNG(seed ^ (uint64(c)+1)*0x5DEECE66D)
		for i := r.Start; i < r.End; i++ {
			out[i] = edgelist.Edge{U: rng.uint32n(uint32(numNodes)), V: rng.uint32n(uint32(numNodes))}
		}
	})
	return out, nil
}

// Ring generates the deterministic cycle 0→1→…→n-1→0, a structured extreme
// with uniform degree 1.
func Ring(numNodes int) edgelist.List {
	out := make(edgelist.List, numNodes)
	for i := range out {
		out[i] = edgelist.Edge{U: uint32(i), V: uint32((i + 1) % numNodes)}
	}
	return out
}

// Prepare sorts, dedups and (optionally) symmetrizes a raw generated list,
// returning a construction-ready edge list and the node count. It runs the
// fused radix pipeline (edgelist.List.Prepared) rather than separate
// symmetrize/sort/dedup passes.
func Prepare(l edgelist.List, symmetrize bool, p int) (edgelist.List, int) {
	l = l.Prepared(symmetrize, p)
	return l, l.NumNodes()
}

// TemporalStream generates a sorted toggle-event stream over numFrames
// frames: frame 0 carries baseEdges initial edges, every later frame
// toggles churnEdges random edges (mixing re-toggles of earlier edges with
// fresh ones). The stream is (t, u, v)-sorted and deduplicated per frame.
func TemporalStream(numNodes, baseEdges, churnEdges, numFrames int, seed uint64, p int) (edgelist.TemporalList, error) {
	if numNodes < 2 {
		return nil, fmt.Errorf("gen: TemporalStream needs at least two nodes")
	}
	if numFrames < 1 {
		return nil, fmt.Errorf("gen: TemporalStream needs at least one frame")
	}
	rng := newRNG(seed)
	var out edgelist.TemporalList
	randEdge := func() (uint32, uint32) {
		u := rng.uint32n(uint32(numNodes))
		v := rng.uint32n(uint32(numNodes))
		return u, v
	}
	seen := make([]edgelist.Edge, 0, baseEdges)
	for i := 0; i < baseEdges; i++ {
		u, v := randEdge()
		out = append(out, edgelist.TemporalEdge{U: u, V: v, T: 0})
		seen = append(seen, edgelist.Edge{U: u, V: v})
	}
	for t := 1; t < numFrames; t++ {
		for i := 0; i < churnEdges; i++ {
			if len(seen) > 0 && rng.float64() < 0.5 {
				// Toggle an existing edge (delete or re-add).
				e := seen[rng.intn(len(seen))]
				out = append(out, edgelist.TemporalEdge{U: e.U, V: e.V, T: uint32(t)})
			} else {
				u, v := randEdge()
				out = append(out, edgelist.TemporalEdge{U: u, V: v, T: uint32(t)})
				seen = append(seen, edgelist.Edge{U: u, V: v})
			}
		}
	}
	out.Sort(p)
	// Dedup within frames: an even toggle count is a no-op and Section IV's
	// input format lists each change once per frame.
	dedup := out[:0]
	for i, e := range out {
		if i == 0 || e != out[i-1] {
			dedup = append(dedup, e)
		}
	}
	return dedup, nil
}
