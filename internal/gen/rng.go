package gen

// rng is a small deterministic PRNG (splitmix64) so generated workloads are
// reproducible across platforms and Go versions, unlike math/rand whose
// stream is not guaranteed stable between releases.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng { return &rng{state: seed} }

// next returns the next 64 pseudo-random bits.
func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// float64 returns a uniform value in [0, 1).
func (r *rng) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// uint32n returns a uniform value in [0, n); n must be positive.
func (r *rng) uint32n(n uint32) uint32 {
	return uint32(r.next() % uint64(n))
}

// intn returns a uniform value in [0, n); n must be positive.
func (r *rng) intn(n int) int {
	return int(r.next() % uint64(n))
}
