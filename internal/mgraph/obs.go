package mgraph

// Storage-layer instrumentation: the mmap load path reports its wall time
// and mapped bytes, and the external-memory build reports per-stage wall
// times for the ingest → sort → spill → merge pipeline plus cumulative
// shard and spilled-byte counters, so a long build's progress and a
// server's startup profile are both visible on /metrics.

import "csrgraph/internal/obs"

var (
	mmapLoadSeconds = obs.GetDurationHistogram("csrgraph_mmap_load_seconds")
	mmapLoadBytes   = obs.GetGauge("csrgraph_mmap_load_bytes")

	spillStageIngest = obs.GetDurationHistogram(`csrgraph_build_spill_stage_seconds{stage="ingest"}`)
	spillStageSort   = obs.GetDurationHistogram(`csrgraph_build_spill_stage_seconds{stage="sort"}`)
	spillStageSpill  = obs.GetDurationHistogram(`csrgraph_build_spill_stage_seconds{stage="spill"}`)
	spillStageMerge  = obs.GetDurationHistogram(`csrgraph_build_spill_stage_seconds{stage="merge"}`)

	spillShardsTotal = obs.GetCounter("csrgraph_build_spill_shards_total")
	spillBytesTotal  = obs.GetCounter("csrgraph_build_spill_bytes_total")
)
