package mgraph

import (
	"bufio"
	"container/heap"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"

	"csrgraph/internal/bitpack"
	"csrgraph/internal/edgelist"
	"csrgraph/internal/obs"
	"csrgraph/internal/radix"
)

// External-memory container construction, after the pipelined spill-to-disk
// workflow of Gupta (arXiv:1210.8242): the edge list streams through a
// bounded buffer of packed (u,v) radix keys; every time the buffer fills it
// is radix-sorted (the PR-2 kernels), deduplicated, and spilled to a
// temporary shard file as a sorted run; the runs are then k-way
// stream-merged — deduplicating across shards and counting degrees on the
// first pass, emitting packed neighbor values on the second — directly into
// the container writer. The full edge list never exists in memory: peak
// RAM is the configured key-buffer budget plus one uint32 degree slot per
// node, so the build handles graphs whose raw edge lists exceed RAM.
//
// Because the spill/merge front end produces exactly the sorted
// deduplicated key sequence that edgelist.List.Prepared produces in RAM,
// and the container writer is a pure function of (numNodes, numEdges,
// values), the emitted file is byte-identical to building in memory and
// calling WritePackedFile — the equivalence the differential tests pin.

// ExternalOptions configures ExternalBuildFile.
type ExternalOptions struct {
	// MemoryBudget caps the spill buffer in bytes (sort keys plus radix
	// scratch, 16 bytes per buffered edge). At most MemoryBudget/16 edges
	// are in flight; the floor is 1024 edges so degenerate budgets still
	// make progress. Default 256 MiB. The buffers grow with the data, so
	// a small input under a large budget allocates only what it streams.
	// The budget governs the edge pipeline; the builder additionally
	// holds 4 bytes per node for the degree array while merging.
	MemoryBudget int64
	// TempDir hosts the spill shards (a private subdirectory, removed on
	// return). Default os.TempDir().
	TempDir string
	// Procs is the parallelism of the in-buffer radix sorts. Default
	// GOMAXPROCS.
	Procs int
	// Symmetrize adds the reverse of every non-self-loop edge, matching
	// edgelist.List.Prepared(true, p).
	Symmetrize bool
}

// ExternalStats reports what a build did — primarily so tests can assert a
// budget actually forced multi-shard spills.
type ExternalStats struct {
	InputEdges   int64 // edges streamed from the source
	Keys         int64 // sort keys generated (input + reverses)
	UniqueEdges  int64 // deduplicated directed edges in the container
	NumNodes     int
	Shards       int   // spill files written
	SpilledBytes int64 // bytes written to spill files
}

// shardWriter spills one sorted deduplicated run and remembers its length.
type spillState struct {
	dir     string
	shards  []string
	stats   ExternalStats
	scratch []uint64 // radix-sort scratch, grown lazily to the largest flush
	maxID   uint32   // largest node id seen on either endpoint
	maxCol  uint32   // largest destination id (the packed neighbor width)
}

// flushShard sorts, dedups, and spills the buffered keys as one run.
func (sp *spillState) flushShard(keys []uint64, procs int) error {
	if len(keys) == 0 {
		return nil
	}
	start := obs.Now()
	if cap(sp.scratch) < len(keys) {
		sp.scratch = make([]uint64, len(keys))
	}
	radix.Sort64(keys, sp.scratch[:len(keys)], procs)
	w := 0
	for i, k := range keys {
		if i == 0 || k != keys[w-1] {
			keys[w] = k
			w++
		}
	}
	keys = keys[:w]
	start = obs.Tick(spillStageSort, start)

	path := filepath.Join(sp.dir, fmt.Sprintf("shard-%05d.spill", len(sp.shards)))
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 256<<10)
	var rec [8]byte
	for _, k := range keys {
		putU64(rec[:], k)
		if _, err := bw.Write(rec[:]); err != nil {
			f.Close() //csr:errok write already failed; surfacing the first error
			return err
		}
	}
	werr := bw.Flush()
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return werr
	}
	sp.shards = append(sp.shards, path)
	sp.stats.Shards++
	sp.stats.SpilledBytes += int64(8 * len(keys))
	spillShardsTotal.Inc()
	spillBytesTotal.Add(int64(8 * len(keys)))
	obs.Tick(spillStageSpill, start)
	return nil
}

// runReader streams one sorted shard back during the merge.
type runReader struct {
	br  *bufio.Reader
	f   *os.File
	cur uint64
	ok  bool
}

func (r *runReader) next() error {
	var rec [8]byte
	_, err := io.ReadFull(r.br, rec[:])
	if err == io.EOF {
		r.ok = false
		return nil
	}
	if err != nil {
		return err
	}
	r.cur = leU64(rec[:])
	return nil
}

// runHeap is a min-heap of shard readers keyed by their current element,
// the k-way merge frontier.
type runHeap []*runReader

func (h runHeap) Len() int            { return len(h) }
func (h runHeap) Less(i, j int) bool  { return h[i].cur < h[j].cur }
func (h runHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *runHeap) Push(x interface{}) { *h = append(*h, x.(*runReader)) }
func (h *runHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// mergeRuns streams the union of all sorted runs in ascending order,
// skipping duplicates across runs (each run is already internally
// deduplicated), and calls emit for every unique key.
func mergeRuns(paths []string, emit func(key uint64) error) error {
	h := make(runHeap, 0, len(paths))
	defer func() {
		for _, r := range h {
			r.f.Close() //csr:errok read-only spill file
		}
	}()
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return err
		}
		r := &runReader{br: bufio.NewReaderSize(f, 256<<10), f: f, ok: true}
		if err := r.next(); err != nil {
			f.Close() //csr:errok read-only spill file
			return err
		}
		if r.ok {
			h = append(h, r)
		} else {
			f.Close() //csr:errok read-only spill file
		}
	}
	heap.Init(&h)
	first := true
	var last uint64
	for len(h) > 0 {
		r := h[0]
		k := r.cur
		if first || k != last {
			if err := emit(k); err != nil {
				return err
			}
			last, first = k, false
		}
		if err := r.next(); err != nil {
			return err
		}
		if r.ok {
			heap.Fix(&h, 0)
		} else {
			r.f.Close() //csr:errok read-only spill file
			heap.Pop(&h)
		}
	}
	return nil
}

// ExternalBuildFile streams the edge list at input through the
// spill-to-disk pipeline into a packed-form container at output, under
// opt.MemoryBudget bytes of edge-buffer memory. Input codecs follow
// edgelist.StreamFile (SNAP text, binary framing, optional gzip).
func ExternalBuildFile(input, output string, opt ExternalOptions) (*ExternalStats, error) {
	return ExternalBuild(func(emit func(u, v uint32) error) error {
		return edgelist.StreamFile(input, emit)
	}, output, opt)
}

// ExternalBuild is ExternalBuildFile over an arbitrary edge stream: source
// must call emit once per input edge and may be invoked exactly once.
func ExternalBuild(source func(emit func(u, v uint32) error) error, output string, opt ExternalOptions) (*ExternalStats, error) {
	if opt.MemoryBudget <= 0 {
		opt.MemoryBudget = 256 << 20
	}
	if opt.Procs <= 0 {
		opt.Procs = runtime.GOMAXPROCS(0)
	}
	capKeys := int(opt.MemoryBudget / 16)
	if capKeys < 1024 {
		capKeys = 1024
	}

	dir, err := os.MkdirTemp(opt.TempDir, "csrspill-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir) //csr:errok best-effort temp cleanup

	sp := &spillState{dir: dir}
	// The key buffer starts small and doubles toward the budgeted cap, so
	// peak allocation tracks the data actually streamed rather than the
	// budget: a 1 GiB budget over a 10k-edge input stays at kilobytes.
	keys := make([]uint64, 0, min(capKeys, 1<<13))

	// Phase 1 — ingest and spill: pack each edge (and its reverse when
	// symmetrizing) into a sort key; on a full buffer, sort+dedup+spill.
	ingestStart := obs.Now()
	push := func(k uint64) error {
		if len(keys) == capKeys {
			if err := sp.flushShard(keys, opt.Procs); err != nil {
				return err
			}
			keys = keys[:0]
		} else if len(keys) == cap(keys) {
			grown := make([]uint64, len(keys), min(cap(keys)*2, capKeys))
			copy(grown, keys)
			keys = grown
		}
		keys = append(keys, k)
		sp.stats.Keys++
		return nil
	}
	err = source(func(u, v uint32) error {
		sp.stats.InputEdges++
		if u > sp.maxID {
			sp.maxID = u
		}
		if v > sp.maxID {
			sp.maxID = v
		}
		if v > sp.maxCol {
			sp.maxCol = v
		}
		if err := push(uint64(u)<<32 | uint64(v)); err != nil {
			return err
		}
		if opt.Symmetrize && u != v {
			if u > sp.maxCol {
				sp.maxCol = u
			}
			return push(uint64(v)<<32 | uint64(u))
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("mgraph: external build ingest: %w", err)
	}
	if err := sp.flushShard(keys, opt.Procs); err != nil {
		return nil, fmt.Errorf("mgraph: external build spill: %w", err)
	}
	keys, sp.scratch = nil, nil // the budgeted buffers are done; free before the merge
	obs.Tick(spillStageIngest, ingestStart)

	numNodes := 0
	if sp.stats.Keys > 0 {
		numNodes = int(sp.maxID) + 1
	}
	sp.stats.NumNodes = numNodes

	// Phase 2 — first merge pass: count degrees and the unique edge total.
	// The merged sequence is simultaneously written to one consolidated
	// run so the second pass is a single sequential read instead of a
	// re-merge.
	mergeStart := obs.Now()
	deg := make([]uint32, numNodes)
	merged := filepath.Join(dir, "merged.spill")
	mf, err := os.Create(merged)
	if err != nil {
		return nil, err
	}
	mw := bufio.NewWriterSize(mf, 256<<10)
	var rec [8]byte
	err = mergeRuns(sp.shards, func(k uint64) error {
		deg[k>>32]++
		sp.stats.UniqueEdges++
		putU64(rec[:], k)
		_, werr := mw.Write(rec[:])
		return werr
	})
	if err == nil {
		err = mw.Flush()
	}
	if cerr := mf.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, fmt.Errorf("mgraph: external build merge: %w", err)
	}

	// Phase 3 — stream the container: prefix-sum the degrees straight into
	// the packed offsets section, then re-read the consolidated run into
	// the packed neighbors section. Widths match the in-RAM pack exactly:
	// offsets peak at numEdges, neighbors at the largest destination id.
	m := sp.stats.UniqueEdges
	err = create(output, func(f *os.File) error {
		w, err := newContainerWriter(f, 0, 2, uint64(numNodes), uint64(m))
		if err != nil {
			return err
		}
		offWidth := bitpack.WidthFor(uint32(m))
		if err := w.begin(KindOffsets, uint32(offWidth), uint64(numNodes)+1); err != nil {
			return err
		}
		running := uint64(0)
		if err := w.value(running, offWidth); err != nil {
			return err
		}
		for _, d := range deg {
			running += uint64(d)
			if err := w.value(running, offWidth); err != nil {
				return err
			}
		}
		if err := w.end(); err != nil {
			return err
		}

		colWidth := bitpack.WidthFor(sp.maxCol)
		if err := w.begin(KindNeighbors, uint32(colWidth), uint64(m)); err != nil {
			return err
		}
		rf, err := os.Open(merged)
		if err != nil {
			return err
		}
		defer rf.Close() //csr:errok read-only spill file
		br := bufio.NewReaderSize(rf, 256<<10)
		var rec [8]byte
		for {
			_, rerr := io.ReadFull(br, rec[:])
			if rerr == io.EOF {
				break
			}
			if rerr != nil {
				return rerr
			}
			if err := w.value(leU64(rec[:])&0xffffffff, colWidth); err != nil {
				return err
			}
		}
		if err := w.end(); err != nil {
			return err
		}
		return w.finish()
	})
	if err != nil {
		return nil, fmt.Errorf("mgraph: external build write: %w", err)
	}
	obs.Tick(spillStageMerge, mergeStart)
	stats := sp.stats
	return &stats, nil
}
