package mgraph

import (
	"fmt"
	"hash/crc32"
	"os"

	"csrgraph/internal/obs"
)

// Mapped is a container opened through the zero-copy load path: the graph
// arrays alias the file mapping (or, on platforms without mmap support, a
// single aligned heap copy). Queries on the contained graph are safe for
// concurrent use — the mapping is read-only and the views are immutable —
// but must not outlive Close.
//
// Trust model: Open always validates the header, section table, section
// bounds, and the row-offset invariants (everything row decoding needs to
// stay in-bounds), touching only the header and offsets pages. It does NOT
// checksum the payloads or scan neighbor values: a server reopening the
// container it built gets its near-zero startup, while corrupt neighbor
// bits would surface as wrong answers rather than panics in the search
// paths. For files from untrusted sources, opt into WithVerify, which adds
// the per-section CRC pass and the O(numEdges) neighbor-range scan.
type Mapped struct {
	*Container
	data   []byte
	mapped bool // true when data is an OS mapping that needs munmap
}

// openConfig collects Open options.
type openConfig struct {
	verify    bool
	nodeSpace int // >0: neighbor-range bound override (sharded containers)
}

// OpenOption customizes Open.
type OpenOption func(*openConfig)

// WithVerify makes Open checksum every section payload and scan neighbor
// values against the node space before returning. It faults in the whole
// file — integrity over startup latency.
func WithVerify() OpenOption {
	return func(c *openConfig) { c.verify = true }
}

// WithNodeSpace overrides the node space the verify pass scans neighbor
// values against. Shard containers store local rows with GLOBAL neighbor
// ids, so their valid bound is the whole graph's node count, not the
// container's own row count. No effect without WithVerify.
func WithNodeSpace(n int) OpenOption {
	return func(c *openConfig) { c.nodeSpace = n }
}

// Open maps the container at path and assembles zero-copy graph views over
// the mapping. With metrics enabled the load reports its wall time under
// csrgraph_mmap_load_seconds and the mapped byte count under
// csrgraph_mmap_load_bytes.
func Open(path string, opts ...OpenOption) (*Mapped, error) {
	var cfg openConfig
	for _, o := range opts {
		o(&cfg)
	}
	start := obs.Now()
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() //csr:errok read-only file; close cannot lose data
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size < headerSize {
		// Short files still get the legacy-format hint when the magic fits.
		small := make([]byte, size)
		if _, err := f.ReadAt(small, 0); err == nil {
			if _, perr := parseMeta(small, uint64(size)); perr != nil {
				return nil, perr
			}
		}
		return nil, fmt.Errorf("mgraph: %s: %d bytes is too short for a container", path, size)
	}
	data, mapped, err := mapFile(f, size)
	if err != nil {
		return nil, fmt.Errorf("mgraph: map %s: %w", path, err)
	}
	c, err := Parse(data, ParseOptions{VerifyCRC: cfg.verify})
	if err != nil {
		unmapFile(data, mapped) //csr:errok error path; the parse failure is the error to surface
		return nil, err
	}
	if cfg.verify {
		if pk := c.Packed(); pk != nil {
			verr := error(nil)
			if cfg.nodeSpace > 0 {
				verr = pk.ValidateColsBound(uint32(cfg.nodeSpace))
			} else {
				verr = pk.ValidateCols()
			}
			if verr != nil {
				unmapFile(data, mapped) //csr:errok error path; the validation failure is the error to surface
				return nil, fmt.Errorf("mgraph: %w", verr)
			}
		}
	}
	m := &Mapped{Container: c, data: data, mapped: mapped}
	m.advise()
	obs.Tick(mmapLoadSeconds, start)
	mmapLoadBytes.Set(float64(size))
	return m, nil
}

// advise passes access-pattern hints to the OS: the offsets section is
// touched by every query (prefetch it), while the neighbor/payload
// sections are probed at random by the zero-decode searches (don't
// read-ahead around them).
func (m *Mapped) advise() {
	if !m.mapped {
		return
	}
	for i := range m.Sections {
		s := &m.Sections[i]
		if s.Kind == KindOffsets {
			adviseRange(m.data, int(s.Offset), int(s.Bytes()), adviseWillNeed)
		} else {
			adviseRange(m.data, int(s.Offset), int(s.Bytes()), adviseRandom)
		}
	}
}

// SizeBytes returns the mapped (or copied) container size.
func (m *Mapped) SizeBytes() int64 { return int64(len(m.data)) }

// Close releases the mapping. The graph views become invalid: no query may
// run concurrently with or after Close.
func (m *Mapped) Close() error {
	if m.data == nil {
		return nil
	}
	data, mapped := m.data, m.mapped
	m.data, m.mapped = nil, false
	m.pk, m.pw, m.dp = nil, nil, nil
	return unmapFile(data, mapped)
}

// unmapFile releases data if it is a real mapping; heap copies are GC'd.
func unmapFile(data []byte, mapped bool) error {
	if !mapped || len(data) == 0 {
		return nil
	}
	return munmapBytes(data)
}

// ReadMetaFile reads the container header and section table from path with
// ordinary file reads — no mapping, no array loads — and, when verify is
// set, streams each section through its CRC. crcOK[i] reports section i's
// status and is nil when verify is false. This is csrstats' metadata path.
func ReadMetaFile(path string, verify bool) (meta *Meta, crcOK []bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close() //csr:errok read-only file; close cannot lose data
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	head := make([]byte, headerSize+maxSections*sectionEntrySize)
	if int64(len(head)) > st.Size() {
		head = head[:st.Size()]
	}
	if _, err := f.ReadAt(head, 0); err != nil {
		return nil, nil, fmt.Errorf("mgraph: %s: %w", path, err)
	}
	meta, err = parseMeta(head, uint64(st.Size()))
	if err != nil {
		return nil, nil, fmt.Errorf("mgraph: %s: %w", path, err)
	}
	if !verify {
		return meta, nil, nil
	}
	crcOK = make([]bool, len(meta.Sections))
	buf := make([]byte, writerChunk)
	for i := range meta.Sections {
		s := &meta.Sections[i]
		crc := uint32(0)
		remaining := int64(s.Bytes())
		at := int64(s.Offset)
		for remaining > 0 {
			chunk := buf
			if remaining < int64(len(chunk)) {
				chunk = chunk[:remaining]
			}
			if _, err := f.ReadAt(chunk, at); err != nil {
				return nil, nil, fmt.Errorf("mgraph: %s: section %d: %w", path, i, err)
			}
			crc = crc32.Update(crc, crcTable, chunk)
			at += int64(len(chunk))
			remaining -= int64(len(chunk))
		}
		crcOK[i] = crc == s.CRC
	}
	return meta, crcOK, nil
}
