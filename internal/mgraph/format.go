// Package mgraph defines the versioned on-disk binary container for packed
// CSR graphs and the memory-mapped load path that turns a container file
// into live query structures without copying.
//
// The legacy stream format (csr.Packed.WriteTo) is a serialization: loading
// it re-allocates and re-copies every array, so startup cost scales with
// graph size. The container instead lays each bit-packed array out exactly
// as its in-memory [[]uint64] backing — little-endian words, 64-byte
// aligned — so the file can be mmap'd and wrapped in zero-copy views
// (bitarray.View / bitpack.View over unsafe.Slice of the mapping):
// multi-GB graphs load in milliseconds, the page cache holds the only copy,
// and that copy is shared across every process serving the same file.
//
// Layout (all integers little-endian):
//
//	offset size field
//	0      4    magic "CSRC"
//	4      4    format version (currently 1)
//	8      4    flags (bit 0 weighted, bit 1 delta-gamma)
//	12     4    section count
//	16     8    endianness marker 0x0102030405060708
//	24     8    numNodes
//	32     8    numEdges
//	40     4    CRC-32C of the section table
//	44     4    CRC-32C of header bytes [0,44)
//	48     16   zero padding
//	64     32*k section table
//	...         sections, each zero-padded to a 64-byte boundary
//
// Section table entry (32 bytes): kind u32, width u32 (bits per element; 0
// marks a raw bit payload), count u64 (elements, or bits when width is 0),
// file offset u64 (64-byte aligned), CRC-32C of the payload bytes u32, and
// 4 zero bytes. Section payloads are the packed words verbatim; the unused
// low bits of a final partial word are zero, the invariant every bitarray
// constructor maintains and bitarray.View re-checks on load.
//
// The container holds one graph in one of three forms, with a canonical
// section order so independently produced files are byte-comparable:
//
//	packed   (flags 0):    row offsets, neighbors
//	weighted (flags bit0): row offsets, neighbors, weights
//	delta    (flags bit1): row offsets, delta-gamma payload
//
// The external-memory builder (extbuild.go) streams edge lists larger than
// RAM into this same layout via spill files and a k-way merge, emitting a
// byte-identical file to the in-RAM writer.
package mgraph

import (
	"errors"
	"fmt"
	"hash/crc32"
	"unsafe"

	"csrgraph/internal/bitarray"
	"csrgraph/internal/bitpack"
	"csrgraph/internal/csr"
	"csrgraph/internal/query"
)

const (
	// Magic identifies a container file; csr.ContainerMagic is the single
	// definition so the legacy readers can name the right tool on mismatch.
	Magic = csr.ContainerMagic

	// Version is the current format version; readers reject anything else.
	Version = 1

	headerSize       = 64
	sectionEntrySize = 32
	sectionAlign     = 64

	// endianMarker is stored little-endian and re-read through the same
	// word-view mechanism the sections use, so a byte-swapped host (or a
	// byte-swapped file) fails loudly instead of decoding garbage.
	endianMarker = 0x0102030405060708

	// maxSections bounds the table before any allocation; no defined form
	// needs more than 3 sections, the slack is for future kinds.
	maxSections = 8

	// maxNodes/maxEdges bound the header counts: node ids are uint32 and
	// edge positions are packed into uint32 offsets, so anything larger
	// cannot have been written by this package.
	maxNodes = 1 << 32
	maxEdges = 1 << 32
)

// Container flags.
const (
	flagWeighted uint32 = 1 << 0
	flagDelta    uint32 = 1 << 1
)

// Section kinds.
const (
	KindOffsets      uint32 = 1 // iA: bit-packed row offsets, count = numNodes+1
	KindNeighbors    uint32 = 2 // jA: bit-packed neighbor ids, count = numEdges
	KindWeights      uint32 = 3 // vA: bit-packed weights, count = numEdges
	KindDeltaPayload uint32 = 4 // delta-gamma bit stream, width 0, count = bits
)

// KindName returns a human-readable section kind label for tooling.
func KindName(kind uint32) string {
	switch kind {
	case KindOffsets:
		return "offsets"
	case KindNeighbors:
		return "neighbors"
	case KindWeights:
		return "weights"
	case KindDeltaPayload:
		return "delta-payload"
	}
	return fmt.Sprintf("unknown(%d)", kind)
}

// Form identifies which graph structure a container holds.
type Form int

const (
	FormPacked Form = iota
	FormWeighted
	FormDelta
)

// String names the form as csrstats prints it.
func (f Form) String() string {
	switch f {
	case FormPacked:
		return "packed"
	case FormWeighted:
		return "weighted"
	case FormDelta:
		return "delta"
	}
	return fmt.Sprintf("Form(%d)", int(f))
}

var (
	// ErrLegacyStream reports a legacy pcsr/wcsr stream file handed to the
	// container loader — a format mismatch, not corruption.
	ErrLegacyStream = errors.New("mgraph: legacy stream-format graph file, not a binary container (load with csr.LoadPackedFile, or rebuild with csrconvert -format container)")

	// ErrBigEndianHost reports that the zero-copy word views cannot be
	// built on this machine: the container stores little-endian words and
	// the views reinterpret mapped bytes in host order.
	ErrBigEndianHost = errors.New("mgraph: container requires a little-endian host for zero-copy mapping")
)

// crcTable is the Castagnoli polynomial table shared by writer and reader.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Section describes one aligned payload region of a container.
type Section struct {
	Kind   uint32
	Width  uint32 // bits per element; 0 = raw bit payload
	Count  uint64 // elements, or bits when Width == 0
	Offset uint64 // file byte offset, sectionAlign-aligned
	CRC    uint32 // CRC-32C of the payload bytes
}

// Bits returns the payload length in bits.
func (s *Section) Bits() uint64 {
	if s.Width == 0 {
		return s.Count
	}
	return s.Count * uint64(s.Width)
}

// Bytes returns the payload length in bytes (whole little-endian words).
func (s *Section) Bytes() uint64 { return (s.Bits() + 63) / 64 * 8 }

// Meta is the parsed header and section table of a container — everything
// csrstats prints without touching the arrays.
type Meta struct {
	Version  uint32
	Flags    uint32
	NumNodes uint64
	NumEdges uint64
	Sections []Section
}

// Form derives the graph form from the header flags.
func (m *Meta) Form() Form {
	switch {
	case m.Flags&flagDelta != 0:
		return FormDelta
	case m.Flags&flagWeighted != 0:
		return FormWeighted
	}
	return FormPacked
}

// sectionKinds returns the canonical section kind sequence for a form.
func (f Form) sectionKinds() []uint32 {
	switch f {
	case FormWeighted:
		return []uint32{KindOffsets, KindNeighbors, KindWeights}
	case FormDelta:
		return []uint32{KindOffsets, KindDeltaPayload}
	}
	return []uint32{KindOffsets, KindNeighbors}
}

// le* / putU* are the little-endian integer accessors over raw header
// bytes; hand-rolled shifts so the format package has no codec imports and
// the layout is spelled out at the use sites.
func leU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func leU64(b []byte) uint64 {
	return uint64(leU32(b)) | uint64(leU32(b[4:]))<<32
}

func putU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func putU64(b []byte, v uint64) {
	putU32(b, uint32(v))
	putU32(b[4:], uint32(v>>32))
}

// parseMeta validates the fixed header and section table against the file
// size, bounds-checking every count and offset before the caller builds a
// single view or allocation. size is the total container length in bytes.
func parseMeta(data []byte, size uint64) (*Meta, error) {
	if len(data) >= 4 {
		switch string(data[:4]) {
		case "PCSR", "WCSR":
			return nil, ErrLegacyStream
		}
	}
	if uint64(len(data)) < headerSize {
		return nil, fmt.Errorf("mgraph: %d bytes is too short for a container header", len(data))
	}
	if string(data[:4]) != Magic {
		return nil, fmt.Errorf("mgraph: bad magic %q", data[:4])
	}
	if got := crc32.Checksum(data[0:44], crcTable); got != leU32(data[44:48]) {
		return nil, fmt.Errorf("mgraph: header CRC mismatch (got %08x, stored %08x)", got, leU32(data[44:48]))
	}
	m := &Meta{
		Version:  leU32(data[4:8]),
		Flags:    leU32(data[8:12]),
		NumNodes: leU64(data[24:32]),
		NumEdges: leU64(data[32:40]),
	}
	if m.Version != Version {
		return nil, fmt.Errorf("mgraph: unsupported container version %d (want %d)", m.Version, Version)
	}
	if leU64(data[16:24]) != endianMarker {
		return nil, errors.New("mgraph: endianness marker mismatch (byte-swapped file?)")
	}
	if m.NumNodes > maxNodes || m.NumEdges > maxEdges {
		return nil, fmt.Errorf("mgraph: implausible header numNodes=%d numEdges=%d", m.NumNodes, m.NumEdges)
	}
	nSec := leU32(data[12:16])
	if nSec == 0 || nSec > maxSections {
		return nil, fmt.Errorf("mgraph: implausible section count %d", nSec)
	}
	tableEnd := uint64(headerSize) + uint64(nSec)*sectionEntrySize
	if uint64(len(data)) < tableEnd {
		return nil, fmt.Errorf("mgraph: file truncated inside section table (%d bytes, table ends at %d)", len(data), tableEnd)
	}
	table := data[headerSize:tableEnd]
	if got := crc32.Checksum(table, crcTable); got != leU32(data[40:44]) {
		return nil, fmt.Errorf("mgraph: section table CRC mismatch (got %08x, stored %08x)", got, leU32(data[40:44]))
	}
	// Sections must sit past the table, aligned, in-bounds, and in file
	// order so the canonical layout stays canonical.
	minOffset := (tableEnd + sectionAlign - 1) / sectionAlign * sectionAlign
	m.Sections = make([]Section, nSec)
	for i := range m.Sections {
		e := table[i*sectionEntrySize:]
		s := Section{
			Kind:   leU32(e[0:4]),
			Width:  leU32(e[4:8]),
			Count:  leU64(e[8:16]),
			Offset: leU64(e[16:24]),
			CRC:    leU32(e[24:28]),
		}
		if s.Width > 32 {
			return nil, fmt.Errorf("mgraph: section %d (%s) width %d out of range [0,32]", i, KindName(s.Kind), s.Width)
		}
		if s.Count > 1<<48 {
			return nil, fmt.Errorf("mgraph: section %d (%s) implausible count %d", i, KindName(s.Kind), s.Count)
		}
		if s.Offset%sectionAlign != 0 || s.Offset < minOffset {
			return nil, fmt.Errorf("mgraph: section %d (%s) misplaced at offset %d", i, KindName(s.Kind), s.Offset)
		}
		end := s.Offset + s.Bytes()
		if end < s.Offset || end > size {
			return nil, fmt.Errorf("mgraph: section %d (%s) [%d,%d) overruns %d-byte file", i, KindName(s.Kind), s.Offset, end, size)
		}
		minOffset = (end + sectionAlign - 1) / sectionAlign * sectionAlign
		m.Sections[i] = s
	}
	return m, nil
}

// Container is a loaded container: the parsed metadata plus the assembled
// graph structure, whose arrays alias the backing bytes (a mapping or a
// heap copy — see Mapped).
type Container struct {
	Meta
	form Form
	pk   *csr.Packed
	pw   *csr.PackedWeighted
	dp   *csr.DeltaPacked
}

// GraphForm returns which structure the container holds.
func (c *Container) GraphForm() Form { return c.form }

// Packed returns the bit-packed CSR view: the graph itself for FormPacked,
// the embedded structural part for FormWeighted, nil for FormDelta.
func (c *Container) Packed() *csr.Packed {
	if c.pw != nil {
		return &c.pw.Packed
	}
	return c.pk
}

// Weighted returns the weighted view, or nil for unweighted forms.
func (c *Container) Weighted() *csr.PackedWeighted { return c.pw }

// Delta returns the delta-gamma view, or nil for the packed forms.
func (c *Container) Delta() *csr.DeltaPacked { return c.dp }

// Source returns the query-engine view of whichever form is present.
func (c *Container) Source() query.Source {
	if c.dp != nil {
		return c.dp
	}
	return c.Packed()
}

// hostLittleEndian reports whether native word loads read little-endian
// bytes — the precondition for reinterpreting the mapping as []uint64.
func hostLittleEndian() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}

// wordsAt reinterprets the section payload at [off, off+nbytes) as a word
// slice without copying. The caller has bounds-checked the range and
// alignment; nbytes is a multiple of 8.
func wordsAt(data []byte, off, nbytes uint64) []uint64 {
	if nbytes == 0 {
		return nil
	}
	return unsafe.Slice((*uint64)(unsafe.Pointer(&data[off])), nbytes/8)
}

// ParseOptions controls Parse's optional integrity work.
type ParseOptions struct {
	// VerifyCRC checks every section payload against its stored CRC-32C.
	// It reads the full file, so mapped loads of trusted files skip it.
	VerifyCRC bool
}

// Parse builds a Container over data, which must stay alive and unmodified
// for the Container's lifetime (it is the mapping Open produced, or any
// byte slice for tests and fuzzing). All header, table, and section bounds
// are validated before any view is constructed; the offsets array is
// additionally decoded and checked monotone, because row decoding trusts
// it. Neighbor values are not scanned — see Mapped for the trust model.
func Parse(data []byte, opts ParseOptions) (*Container, error) {
	if !hostLittleEndian() {
		return nil, ErrBigEndianHost
	}
	meta, err := parseMeta(data, uint64(len(data)))
	if err != nil {
		return nil, err
	}
	if len(data) > 0 && uintptr(unsafe.Pointer(&data[0]))%8 != 0 {
		// Section views need 8-byte-aligned words. Mappings are page
		// aligned; an arbitrary caller slice (fuzzing) may not be, so fall
		// back to one aligned copy.
		aligned := make([]uint64, (len(data)+7)/8)
		copy(unsafe.Slice((*byte)(unsafe.Pointer(&aligned[0])), len(data)), data)
		data = unsafe.Slice((*byte)(unsafe.Pointer(&aligned[0])), len(data))
	}
	form := meta.Form()
	kinds := form.sectionKinds()
	if len(meta.Sections) != len(kinds) {
		return nil, fmt.Errorf("mgraph: %s container has %d sections, want %d", form, len(meta.Sections), len(kinds))
	}
	for i, k := range kinds {
		if meta.Sections[i].Kind != k {
			return nil, fmt.Errorf("mgraph: section %d is %s, want %s", i, KindName(meta.Sections[i].Kind), KindName(k))
		}
	}
	if opts.VerifyCRC {
		for i := range meta.Sections {
			s := &meta.Sections[i]
			if got := crc32.Checksum(data[s.Offset:s.Offset+s.Bytes()], crcTable); got != s.CRC {
				return nil, fmt.Errorf("mgraph: section %d (%s) CRC mismatch (got %08x, stored %08x)", i, KindName(s.Kind), got, s.CRC)
			}
		}
	}

	// Packed-element sections must agree with the header counts before the
	// int conversions below.
	offSec := &meta.Sections[0]
	if offSec.Width == 0 || offSec.Count != meta.NumNodes+1 {
		return nil, fmt.Errorf("mgraph: offsets section has %d entries at width %d, want %d packed entries", offSec.Count, offSec.Width, meta.NumNodes+1)
	}
	off, err := bitpack.View(int(offSec.Width), int(offSec.Count), wordsAt(data, offSec.Offset, offSec.Bytes()))
	if err != nil {
		return nil, fmt.Errorf("mgraph: offsets section: %w", err)
	}

	c := &Container{Meta: *meta, form: form}
	switch form {
	case FormPacked, FormWeighted:
		colSec := &meta.Sections[1]
		if colSec.Width == 0 || colSec.Count != meta.NumEdges {
			return nil, fmt.Errorf("mgraph: neighbors section has %d entries at width %d, want %d packed entries", colSec.Count, colSec.Width, meta.NumEdges)
		}
		cols, err := bitpack.View(int(colSec.Width), int(colSec.Count), wordsAt(data, colSec.Offset, colSec.Bytes()))
		if err != nil {
			return nil, fmt.Errorf("mgraph: neighbors section: %w", err)
		}
		if form == FormPacked {
			c.pk, err = csr.AssemblePacked(off, cols)
			if err != nil {
				return nil, fmt.Errorf("mgraph: %w", err)
			}
			return c, nil
		}
		valSec := &meta.Sections[2]
		if valSec.Width == 0 || valSec.Count != meta.NumEdges {
			return nil, fmt.Errorf("mgraph: weights section has %d entries at width %d, want %d packed entries", valSec.Count, valSec.Width, meta.NumEdges)
		}
		vals, err := bitpack.View(int(valSec.Width), int(valSec.Count), wordsAt(data, valSec.Offset, valSec.Bytes()))
		if err != nil {
			return nil, fmt.Errorf("mgraph: weights section: %w", err)
		}
		c.pw, err = csr.AssemblePackedWeighted(off, cols, vals)
		if err != nil {
			return nil, fmt.Errorf("mgraph: %w", err)
		}
		return c, nil
	default: // FormDelta
		paySec := &meta.Sections[1]
		if paySec.Width != 0 {
			return nil, fmt.Errorf("mgraph: delta payload section has width %d, want raw bits", paySec.Width)
		}
		payload, err := bitarray.View(wordsAt(data, paySec.Offset, paySec.Bytes()), int(paySec.Count))
		if err != nil {
			return nil, fmt.Errorf("mgraph: delta payload section: %w", err)
		}
		c.dp, err = csr.AssembleDeltaPacked(off, payload, int(meta.NumNodes), int(meta.NumEdges))
		if err != nil {
			return nil, fmt.Errorf("mgraph: %w", err)
		}
		return c, nil
	}
}
