//go:build linux

package mgraph

import (
	"os"
	"syscall"
)

// adviseRange applies an access-pattern hint to the pages covering
// data[off:off+n]. madvise wants page-aligned addresses, so the range is
// widened to page boundaries; hints are best-effort and failures are
// ignored — they only cost prefetch efficiency, never correctness.
func adviseRange(data []byte, off, n int, kind adviseKind) {
	if n <= 0 || off < 0 || off >= len(data) {
		return
	}
	page := os.Getpagesize()
	start := off / page * page
	end := off + n
	if end > len(data) {
		end = len(data)
	}
	advice := syscall.MADV_WILLNEED
	if kind == adviseRandom {
		advice = syscall.MADV_RANDOM
	}
	_ = syscall.Madvise(data[start:end], advice) //csr:errok advisory hint; failure only affects prefetching
}
