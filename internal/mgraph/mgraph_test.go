package mgraph

import (
	"bytes"
	"errors"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"csrgraph/internal/algo"
	"csrgraph/internal/bitpack"
	"csrgraph/internal/csr"
	"csrgraph/internal/edgelist"
	"csrgraph/internal/gen"
)

// testGraph builds a deterministic random packed CSR for round-trip tests.
func testGraph(t *testing.T, nodes, edges int, symmetrize bool) (*csr.Packed, edgelist.List) {
	t.Helper()
	list, err := gen.ErdosRenyi(nodes, edges, 42, 4)
	if err != nil {
		t.Fatalf("gen: %v", err)
	}
	prepared := list.Prepared(symmetrize, 4)
	pk := csr.BuildPacked(prepared, prepared.NumNodes(), 4)
	return pk, list
}

// writeTemp writes a packed container into the test's temp dir.
func writeTemp(t *testing.T, name string, pk *csr.Packed) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := WritePackedFile(path, pk); err != nil {
		t.Fatalf("WritePackedFile: %v", err)
	}
	return path
}

// TestRoundTripPacked pins the core contract: build → write → mmap → every
// query answer identical, including a full BFS through the query engine.
func TestRoundTripPacked(t *testing.T) {
	pk, _ := testGraph(t, 2000, 10000, true)
	path := writeTemp(t, "g.csrc", pk)

	m, err := Open(path, WithVerify())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer m.Close() //csr:errok test cleanup of a read-only mapping

	got := m.Packed()
	if got.NumNodes() != pk.NumNodes() || got.NumEdges() != pk.NumEdges() {
		t.Fatalf("shape (%d,%d), want (%d,%d)", got.NumNodes(), got.NumEdges(), pk.NumNodes(), pk.NumEdges())
	}
	var a, b []uint32
	for u := 0; u < pk.NumNodes(); u++ {
		a, b = pk.Row(a[:0], uint32(u)), got.Row(b[:0], uint32(u))
		if len(a) != len(b) {
			t.Fatalf("row %d length %d != %d", u, len(b), len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("row %d[%d] = %d, want %d", u, i, b[i], a[i])
			}
		}
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		u, v := uint32(rng.Intn(pk.NumNodes())), uint32(rng.Intn(pk.NumNodes()))
		if pk.SearchRow(u, v) != got.SearchRow(u, v) {
			t.Fatalf("SearchRow(%d,%d) diverges", u, v)
		}
	}
	want := algo.BFS(pk, 0, 4)
	have := algo.BFS(m.Source(), 0, 4)
	for i := range want {
		if want[i] != have[i] {
			t.Fatalf("BFS level[%d] = %d, want %d", i, have[i], want[i])
		}
	}
}

// TestRoundTripWidths sweeps every packable neighbor width 1..32: synthetic
// sorted rows with a forced maximum value so WidthFor picks exactly w, then
// write → parse → compare decoded rows and searches. High widths use node
// values far beyond numNodes, which AssemblePacked permits (only offsets
// are validated), so this exercises the raw bit layout at every width
// without gigantic node spaces.
func TestRoundTripWidths(t *testing.T) {
	const n = 48
	for w := 1; w <= 32; w++ {
		maxVal := uint32(1)<<uint(w) - 1
		if w == 32 {
			maxVal = ^uint32(0)
		}
		rng := rand.New(rand.NewSource(int64(w)))
		var cols []uint32
		offsets := make([]uint32, n+1)
		for u := 0; u < n; u++ {
			deg := rng.Intn(6)
			row := make([]uint32, 0, deg+1)
			for i := 0; i < deg; i++ {
				row = append(row, uint32(rng.Int63n(int64(maxVal)+1)))
			}
			if u == 0 {
				row = append(row, maxVal) // force the width
			}
			// Sorted, deduplicated row — the CSR invariant.
			for i := 1; i < len(row); i++ {
				for j := i; j > 0 && row[j] < row[j-1]; j-- {
					row[j], row[j-1] = row[j-1], row[j]
				}
			}
			for i := 0; i < len(row); i++ {
				if i > 0 && row[i] == row[i-1] {
					continue
				}
				cols = append(cols, row[i])
			}
			offsets[u+1] = uint32(len(cols))
		}
		offPk := bitpack.Pack(offsets, 1)
		colPk := bitpack.Pack(cols, 1)
		if colPk.Width() != w {
			t.Fatalf("width %d: packed as %d", w, colPk.Width())
		}
		pk, err := csr.AssemblePacked(offPk, colPk)
		if err != nil {
			t.Fatalf("width %d: assemble: %v", w, err)
		}
		path := filepath.Join(t.TempDir(), "w.csrc")
		if err := WritePackedFile(path, pk); err != nil {
			t.Fatalf("width %d: write: %v", w, err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		c, err := Parse(data, ParseOptions{VerifyCRC: true})
		if err != nil {
			t.Fatalf("width %d: parse: %v", w, err)
		}
		got := c.Packed()
		if got.NumBits() != w {
			t.Fatalf("width %d: container view has width %d", w, got.NumBits())
		}
		var a, b []uint32
		for u := 0; u < n; u++ {
			a, b = pk.Row(a[:0], uint32(u)), got.Row(b[:0], uint32(u))
			if len(a) != len(b) {
				t.Fatalf("width %d row %d: len %d != %d", w, u, len(b), len(a))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("width %d row %d[%d]: %d != %d", w, u, i, b[i], a[i])
				}
			}
			for _, v := range a {
				if !got.SearchRow(uint32(u), v) {
					t.Fatalf("width %d: SearchRow(%d,%d) lost an edge", w, u, v)
				}
			}
		}
	}
}

// TestRoundTripWeighted covers the three-section weighted form.
func TestRoundTripWeighted(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	edges := make([]csr.WeightedEdge, 4000)
	for i := range edges {
		edges[i] = csr.WeightedEdge{U: uint32(rng.Intn(500)), V: uint32(rng.Intn(500)), W: rng.Uint32() >> 8}
	}
	wm, err := csr.BuildWeighted(edges, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	pw := csr.PackWeighted(wm, 4)
	path := filepath.Join(t.TempDir(), "g.csrc")
	if err := WriteWeightedFile(path, pw); err != nil {
		t.Fatal(err)
	}
	m, err := Open(path, WithVerify())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close() //csr:errok test cleanup of a read-only mapping
	if m.GraphForm() != FormWeighted {
		t.Fatalf("form = %v", m.GraphForm())
	}
	got := m.Weighted()
	for u := 0; u < pw.NumNodes(); u++ {
		for _, v := range pw.Row(nil, uint32(u)) {
			ww, ok1 := pw.Weight(uint32(u), v)
			gw, ok2 := got.Weight(uint32(u), v)
			if !ok1 || !ok2 || ww != gw {
				t.Fatalf("Weight(%d,%d): (%d,%v) != (%d,%v)", u, v, gw, ok2, ww, ok1)
			}
		}
	}
}

// TestRoundTripDelta covers the raw-bits payload section of the delta form.
func TestRoundTripDelta(t *testing.T) {
	list, err := gen.ErdosRenyi(800, 6000, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	prepared := list.Prepared(true, 4)
	mat := csr.Build(prepared, prepared.NumNodes(), 4)
	dp := csr.PackDelta(mat, 4)
	path := filepath.Join(t.TempDir(), "g.csrc")
	if err := WriteDeltaFile(path, dp); err != nil {
		t.Fatal(err)
	}
	m, err := Open(path, WithVerify())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close() //csr:errok test cleanup of a read-only mapping
	if m.GraphForm() != FormDelta {
		t.Fatalf("form = %v", m.GraphForm())
	}
	got := m.Delta()
	var a, b []uint32
	for u := 0; u < dp.NumNodes(); u++ {
		a, b = dp.Row(a[:0], uint32(u)), got.Row(b[:0], uint32(u))
		if len(a) != len(b) {
			t.Fatalf("row %d: len %d != %d", u, len(b), len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("row %d[%d]: %d != %d", u, i, b[i], a[i])
			}
		}
	}
}

// TestExternalBuildByteIdentical is the acceptance differential: the
// spill-to-disk build must emit byte-for-byte the file the in-RAM path
// emits, at a comfortable budget (single shard) and at starvation budgets
// that force many spill shards and a wide merge.
func TestExternalBuildByteIdentical(t *testing.T) {
	for _, sym := range []bool{false, true} {
		list, err := gen.ErdosRenyi(2000, 8000, 11, 4)
		if err != nil {
			t.Fatal(err)
		}
		dir := t.TempDir()

		// Reference: fully in-RAM.
		prepared := list.Prepared(sym, 4)
		pk := csr.BuildPacked(prepared, prepared.NumNodes(), 4)
		ramPath := filepath.Join(dir, "ram.csrc")
		if err := WritePackedFile(ramPath, pk); err != nil {
			t.Fatal(err)
		}
		want, err := os.ReadFile(ramPath)
		if err != nil {
			t.Fatal(err)
		}

		// Edge input file for the streaming path.
		input := filepath.Join(dir, "edges.bin")
		f, err := os.Create(input)
		if err != nil {
			t.Fatal(err)
		}
		if err := list.WriteBinary(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}

		for _, budget := range []int64{1 << 30, 1 << 16, 1} {
			out := filepath.Join(dir, "ext.csrc")
			stats, err := ExternalBuildFile(input, out, ExternalOptions{
				MemoryBudget: budget,
				TempDir:      dir,
				Procs:        4,
				Symmetrize:   sym,
			})
			if err != nil {
				t.Fatalf("sym=%v budget=%d: %v", sym, budget, err)
			}
			if budget == 1 && stats.Shards < 2 {
				t.Fatalf("sym=%v budget=1: %d shards, wanted a multi-shard spill", sym, stats.Shards)
			}
			if stats.UniqueEdges != int64(pk.NumEdges()) || stats.NumNodes != pk.NumNodes() {
				t.Fatalf("sym=%v budget=%d: stats (%d,%d), want (%d,%d)",
					sym, budget, stats.NumNodes, stats.UniqueEdges, pk.NumNodes(), pk.NumEdges())
			}
			got, err := os.ReadFile(out)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("sym=%v budget=%d: external container differs from in-RAM (%d vs %d bytes)",
					sym, budget, len(got), len(want))
			}
			// The external container must also load and answer queries.
			m, err := Open(out, WithVerify())
			if err != nil {
				t.Fatalf("sym=%v budget=%d: open external: %v", sym, budget, err)
			}
			if m.Packed().NumEdges() != pk.NumEdges() {
				t.Fatalf("sym=%v budget=%d: mapped external has %d edges", sym, budget, m.Packed().NumEdges())
			}
			m.Close() //csr:errok test cleanup of a read-only mapping //csr:errok test cleanup of a read-only mapping
		}
	}
}

// TestExternalBuildEmpty pins the degenerate shapes.
func TestExternalBuildEmpty(t *testing.T) {
	dir := t.TempDir()
	input := filepath.Join(dir, "edges.txt")
	if err := os.WriteFile(input, []byte("# empty\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "empty.csrc")
	stats, err := ExternalBuildFile(input, out, ExternalOptions{TempDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if stats.UniqueEdges != 0 || stats.NumNodes != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	m, err := Open(out, WithVerify())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close() //csr:errok test cleanup of a read-only mapping
	if m.Packed().NumNodes() != 0 || m.Packed().NumEdges() != 0 {
		t.Fatalf("empty container has shape (%d,%d)", m.Packed().NumNodes(), m.Packed().NumEdges())
	}
}

// TestReadMetaFile checks the metadata-only reader used by csrstats.
func TestReadMetaFile(t *testing.T) {
	pk, _ := testGraph(t, 500, 3000, false)
	path := writeTemp(t, "g.csrc", pk)

	meta, crcOK, err := ReadMetaFile(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Version != Version || meta.Form() != FormPacked {
		t.Fatalf("meta = %+v", meta)
	}
	if meta.NumNodes != uint64(pk.NumNodes()) || meta.NumEdges != uint64(pk.NumEdges()) {
		t.Fatalf("meta counts (%d,%d)", meta.NumNodes, meta.NumEdges)
	}
	if len(meta.Sections) != 2 || len(crcOK) != 2 || !crcOK[0] || !crcOK[1] {
		t.Fatalf("sections %d, crcOK %v", len(meta.Sections), crcOK)
	}
	if meta.Sections[0].Kind != KindOffsets || meta.Sections[1].Kind != KindNeighbors {
		t.Fatalf("section kinds %d,%d", meta.Sections[0].Kind, meta.Sections[1].Kind)
	}

	// Corrupt one payload byte: metadata still reads, CRC flags it.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[meta.Sections[1].Offset] ^= 0xff
	bad := filepath.Join(t.TempDir(), "bad.csrc")
	if err := os.WriteFile(bad, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, crcOK, err = ReadMetaFile(bad, true)
	if err != nil {
		t.Fatal(err)
	}
	if !crcOK[0] || crcOK[1] {
		t.Fatalf("crcOK = %v after corrupting section 1", crcOK)
	}
	if _, err := Open(bad, WithVerify()); err == nil {
		t.Fatal("Open(WithVerify) accepted a corrupt payload")
	}
	// Without verification the mapped open trusts the payload (documented
	// trust model) but must still validate the header and offsets.
	m, err := Open(bad)
	if err != nil {
		t.Fatalf("Open without verify: %v", err)
	}
	m.Close() //csr:errok test cleanup of a read-only mapping
}

// TestFormatMismatch pins the two wrong-format errors, both directions.
func TestFormatMismatch(t *testing.T) {
	pk, _ := testGraph(t, 200, 800, false)

	// Legacy stream handed to the container loader.
	var legacy bytes.Buffer
	if _, err := pk.WriteTo(&legacy); err != nil {
		t.Fatal(err)
	}
	legacyPath := filepath.Join(t.TempDir(), "legacy.pcsr")
	if err := os.WriteFile(legacyPath, legacy.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(legacyPath); !errors.Is(err, ErrLegacyStream) {
		t.Fatalf("Open(legacy) = %v, want ErrLegacyStream", err)
	}
	if _, _, err := ReadMetaFile(legacyPath, false); !errors.Is(err, ErrLegacyStream) {
		t.Fatalf("ReadMetaFile(legacy) = %v, want ErrLegacyStream", err)
	}

	// Container handed to the legacy reader.
	contPath := writeTemp(t, "g.csrc", pk)
	cf, err := os.Open(contPath)
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close() //csr:errok read-only test file
	if _, err := csr.ReadPacked(cf); !errors.Is(err, csr.ErrContainerFile) {
		t.Fatalf("ReadPacked(container) = %v, want ErrContainerFile", err)
	}
}

// TestParseRejectsCorruptHeaders walks a gauntlet of structural corruption;
// every case must error cleanly, never panic, never return a bad Container.
func TestParseRejectsCorruptHeaders(t *testing.T) {
	pk, _ := testGraph(t, 300, 1500, false)
	path := writeTemp(t, "g.csrc", pk)
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(name string, f func(b []byte) []byte) {
		b := f(append([]byte(nil), good...))
		if _, err := Parse(b, ParseOptions{}); err == nil {
			t.Fatalf("%s: Parse accepted corrupt input", name)
		}
	}
	mutate("empty", func(b []byte) []byte { return nil })
	mutate("short-header", func(b []byte) []byte { return b[:40] })
	mutate("bad-magic", func(b []byte) []byte { b[0] = 'X'; return b })
	mutate("bad-version", func(b []byte) []byte { b[4] = 99; return b })
	mutate("bad-endian-marker", func(b []byte) []byte { b[16] ^= 0xff; return b })
	mutate("bad-header-crc", func(b []byte) []byte { b[24] ^= 0x01; return b })
	mutate("bad-table-crc", func(b []byte) []byte { b[headerSize] ^= 0x01; return b })
	mutate("truncated-payload", func(b []byte) []byte { return b[:len(b)-8] })
	mutate("section-count-overflow", func(b []byte) []byte {
		putU32(b[12:], 200)
		// Recompute header CRC so the count is what parsing rejects.
		rehdr(b)
		return b
	})
	mutate("offsets-not-monotone", func(b []byte) []byte {
		// Smash the offsets payload; AssemblePacked's monotonicity check
		// must catch it even without CRC verification.
		off := leU64(b[headerSize+16:])
		for i := uint64(0); i < 16; i++ {
			b[off+i] = 0xff
		}
		return b
	})
}

// rehdr recomputes the table and header CRCs after a test mutates fields,
// so parsing exercises the semantic check rather than the checksum.
func rehdr(b []byte) {
	n := int(leU32(b[12:]))
	end := headerSize + n*sectionEntrySize
	if end > len(b) {
		end = len(b)
	}
	putU32(b[40:], crc32.Checksum(b[headerSize:end], crcTable))
	putU32(b[44:], crc32.Checksum(b[0:44], crcTable))
}

// TestConcurrentQueriesOnMapped drives parallel readers over one mapping —
// the race detector's view of the zero-copy path (wired into make
// test-race).
func TestConcurrentQueriesOnMapped(t *testing.T) {
	pk, _ := testGraph(t, 1500, 9000, true)
	path := writeTemp(t, "g.csrc", pk)
	m, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close() //csr:errok test cleanup of a read-only mapping

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var row []uint32
			got := m.Packed()
			for i := 0; i < 2000; i++ {
				u := uint32(rng.Intn(got.NumNodes()))
				row = got.Row(row[:0], u)
				got.SearchRow(u, uint32(rng.Intn(got.NumNodes())))
			}
			algo.BFS(m.Source(), uint32(seed), 2)
		}(int64(g))
	}
	wg.Wait()
}
