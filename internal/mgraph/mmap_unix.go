//go:build linux || darwin

package mgraph

import (
	"os"
	"syscall"
)

// mapFile maps size bytes of f read-only and shared: the page cache holds
// the only copy, shared with every other process mapping the same file.
func mapFile(f *os.File, size int64) ([]byte, bool, error) {
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, false, err
	}
	return data, true, nil
}

// munmapBytes releases a mapping produced by mapFile.
func munmapBytes(data []byte) error {
	return syscall.Munmap(data)
}

// adviseKind selects the madvise hint adviseRange applies.
type adviseKind int

const (
	adviseWillNeed adviseKind = iota
	adviseRandom
)
