package mgraph

import (
	"os"
	"path/filepath"
	"testing"

	"csrgraph/internal/csr"
	"csrgraph/internal/edgelist"
)

// FuzzParseContainer: the container parser consumes untrusted bytes and
// must reject corruption with an error, never a panic; anything it accepts
// (with full CRC verification on, the untrusted-input posture) must be
// safely queryable through the packed views.
func FuzzParseContainer(f *testing.F) {
	dir := f.TempDir()
	seed := func(name string, write func(path string) error) []byte {
		path := filepath.Join(dir, name)
		if err := write(path); err != nil {
			f.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		return data
	}

	ring := edgelist.List{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 0}, {U: 0, V: 2}}
	prepared := ring.Prepared(true, 1)
	pk := csr.BuildPacked(prepared, prepared.NumNodes(), 1)
	good := seed("p.csrc", func(p string) error { return WritePackedFile(p, pk) })

	mat := csr.Build(prepared, prepared.NumNodes(), 1)
	seed("d.csrc", func(p string) error { return WriteDeltaFile(p, csr.PackDelta(mat, 1)) })

	wm, err := csr.BuildWeighted([]csr.WeightedEdge{{U: 0, V: 1, W: 7}, {U: 1, V: 2, W: 9}}, 0, 1)
	if err != nil {
		f.Fatal(err)
	}
	seed("w.csrc", func(p string) error { return WriteWeightedFile(p, csr.PackWeighted(wm, 1)) })

	// Corrupted variants as seeds.
	for _, cut := range []int{1, 40, headerSize, len(good) / 2} {
		if cut < len(good) {
			f.Add(good[:cut])
		}
	}
	flipped := append([]byte{}, good...)
	flipped[20] ^= 0xFF
	f.Add(flipped)
	f.Add([]byte("CSRC"))
	f.Add([]byte("PCSR"))

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := Parse(data, ParseOptions{VerifyCRC: true})
		if err != nil {
			return
		}
		src := c.Source()
		n := src.NumNodes()
		for u := 0; u < n && u < 64; u++ {
			_ = src.Degree(uint32(u))
			_ = src.Row(nil, uint32(u))
		}
		if p := c.Packed(); p != nil && n > 0 {
			_ = p.SearchRow(0, 0)
		}
	})
}
