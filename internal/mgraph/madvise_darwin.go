//go:build darwin

package mgraph

// adviseRange is a no-op on darwin: the stdlib syscall package has no
// Madvise wrapper there, and the hints are purely best-effort prefetch
// guidance — the mapping works identically without them.
func adviseRange(data []byte, off, n int, kind adviseKind) {}
