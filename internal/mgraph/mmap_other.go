//go:build !linux && !darwin

package mgraph

import (
	"io"
	"os"
	"unsafe"
)

// mapFile on platforms without the unix mmap path falls back to one
// aligned heap copy of the file: the container still loads and the views
// still work, just without shared pages or lazy faulting. The backing is
// allocated as []uint64 so the section word views are always 8-byte
// aligned.
func mapFile(f *os.File, size int64) ([]byte, bool, error) {
	words := make([]uint64, (size+7)/8)
	data := unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), size)
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, size), data); err != nil {
		return nil, false, err
	}
	return data, false, nil
}

// munmapBytes is a no-op for the heap fallback; the GC owns the copy.
func munmapBytes(data []byte) error { return nil }

// adviseKind mirrors the unix build; hints are meaningless without a
// mapping.
type adviseKind int

const (
	adviseWillNeed adviseKind = iota
	adviseRandom
)

// adviseRange is a no-op for the heap fallback.
func adviseRange(data []byte, off, n int, kind adviseKind) {}
