package mgraph

import (
	"bufio"
	"fmt"
	"hash/crc32"
	"os"

	"csrgraph/internal/csr"
)

// containerWriter lays a container out sequentially: sections are streamed
// through a bit accumulator and a chunk buffer (so the external-memory
// build never holds an array in RAM), and the header plus section table are
// back-patched once every section's length and CRC are known. The byte
// stream it produces is a pure function of (flags, numNodes, numEdges,
// section values), which is what makes the in-RAM and external-memory
// builds byte-identical.
type containerWriter struct {
	f        *os.File
	bw       *bufio.Writer
	off      uint64 // absolute file offset of the next byte
	flags    uint32
	numNodes uint64
	numEdges uint64
	sections []Section

	// Open-section streaming state.
	open bool
	crc  uint32
	word uint64 // bit accumulator, MSB-first like bitarray.AppendBits
	fill int    // bits used in word
	buf  []byte // pending encoded words
	bufn int
}

// writerChunk is the flush granularity of the section streamer.
const writerChunk = 64 << 10

// newContainerWriter starts a container of numSections sections on f,
// reserving the header and table region (zero-filled until finish).
func newContainerWriter(f *os.File, flags uint32, numSections int, numNodes, numEdges uint64) (*containerWriter, error) {
	w := &containerWriter{
		f:        f,
		bw:       bufio.NewWriterSize(f, writerChunk),
		flags:    flags,
		numNodes: numNodes,
		numEdges: numEdges,
		sections: make([]Section, 0, numSections),
		buf:      make([]byte, writerChunk),
	}
	reserved := headerSize + numSections*sectionEntrySize
	if err := w.pad(uint64(reserved)); err != nil {
		return nil, err
	}
	return w, nil
}

// pad writes zeros until the absolute offset reaches target.
func (w *containerWriter) pad(target uint64) error {
	for w.off < target {
		if err := w.bw.WriteByte(0); err != nil {
			return err
		}
		w.off++
	}
	return nil
}

// begin opens the next section: pads to the alignment boundary and records
// the section's shape. count follows the Section convention (elements for
// width > 0, bits for width 0).
func (w *containerWriter) begin(kind, width uint32, count uint64) error {
	if w.open {
		return fmt.Errorf("mgraph: begin(%s) with a section still open", KindName(kind))
	}
	if err := w.pad((w.off + sectionAlign - 1) / sectionAlign * sectionAlign); err != nil {
		return err
	}
	w.sections = append(w.sections, Section{Kind: kind, Width: width, Count: count, Offset: w.off})
	w.open, w.crc, w.word, w.fill, w.bufn = true, 0, 0, 0, 0
	return nil
}

// flushBuf drains the pending encoded words into the file, folding them
// into the section CRC.
func (w *containerWriter) flushBuf() error {
	if w.bufn == 0 {
		return nil
	}
	w.crc = crc32.Update(w.crc, crcTable, w.buf[:w.bufn])
	_, err := w.bw.Write(w.buf[:w.bufn])
	w.off += uint64(w.bufn)
	w.bufn = 0
	return err
}

// emitWord appends one complete little-endian word to the section payload.
func (w *containerWriter) emitWord(v uint64) error {
	if w.bufn == len(w.buf) {
		if err := w.flushBuf(); err != nil {
			return err
		}
	}
	putU64(w.buf[w.bufn:], v)
	w.bufn += 8
	return nil
}

// value appends the low `width` bits of v to the open section, MSB-first —
// the exact bit layout bitarray.AppendBits produces, so a streamed section
// is byte-identical to packing the values in memory and writing the words.
func (w *containerWriter) value(v uint64, width int) error {
	if width < 64 {
		v &= (1 << width) - 1
	}
	room := 64 - w.fill
	if width < room {
		w.word |= v << (room - width)
		w.fill += width
		return nil
	}
	rest := width - room
	if err := w.emitWord(w.word | v>>rest); err != nil {
		return err
	}
	w.word, w.fill = 0, rest
	if rest > 0 {
		w.word = v << (64 - rest)
	}
	return nil
}

// words bulk-appends finished words; the accumulator must be word-aligned
// (fill 0), which is always true for whole in-memory arrays.
func (w *containerWriter) words(ws []uint64) error {
	if w.fill != 0 {
		return fmt.Errorf("mgraph: words() mid-word (%d bits pending)", w.fill)
	}
	for _, v := range ws {
		if err := w.emitWord(v); err != nil {
			return err
		}
	}
	return nil
}

// end closes the open section: flushes the partial word (its unused low
// bits are zero) and records the payload CRC into the table entry.
func (w *containerWriter) end() error {
	if !w.open {
		return fmt.Errorf("mgraph: end() with no open section")
	}
	if w.fill > 0 {
		if err := w.emitWord(w.word); err != nil {
			return err
		}
		w.word, w.fill = 0, 0
	}
	if err := w.flushBuf(); err != nil {
		return err
	}
	s := &w.sections[len(w.sections)-1]
	if got, want := w.off-s.Offset, s.Bytes(); got != want {
		return fmt.Errorf("mgraph: section %s wrote %d bytes, declared %d", KindName(s.Kind), got, want)
	}
	s.CRC = w.crc
	w.open = false
	return nil
}

// finish flushes the stream and back-patches the header and section table.
func (w *containerWriter) finish() error {
	if w.open {
		return fmt.Errorf("mgraph: finish() with a section still open")
	}
	if err := w.bw.Flush(); err != nil {
		return err
	}
	hdr := make([]byte, headerSize+len(w.sections)*sectionEntrySize)
	copy(hdr[0:4], Magic)
	putU32(hdr[4:], Version)
	putU32(hdr[8:], w.flags)
	putU32(hdr[12:], uint32(len(w.sections)))
	putU64(hdr[16:], endianMarker)
	putU64(hdr[24:], w.numNodes)
	putU64(hdr[32:], w.numEdges)
	for i, s := range w.sections {
		e := hdr[headerSize+i*sectionEntrySize:]
		putU32(e[0:], s.Kind)
		putU32(e[4:], s.Width)
		putU64(e[8:], s.Count)
		putU64(e[16:], s.Offset)
		putU32(e[24:], s.CRC)
	}
	putU32(hdr[40:], crc32.Checksum(hdr[headerSize:], crcTable))
	putU32(hdr[44:], crc32.Checksum(hdr[0:44], crcTable))
	_, err := w.f.WriteAt(hdr, 0)
	return err
}

// create opens path fresh and runs write, closing and cleaning up on error.
func create(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := write(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(path) //csr:errok best-effort cleanup of a failed write
	}
	return werr
}

// WritePackedFile writes pk to path as a packed-form container.
func WritePackedFile(path string, pk *csr.Packed) error {
	return create(path, func(f *os.File) error {
		off, cols := pk.Parts()
		if off.Len() == 0 {
			return fmt.Errorf("mgraph: refusing to write packed CSR with empty offsets")
		}
		w, err := newContainerWriter(f, 0, 2, uint64(pk.NumNodes()), uint64(pk.NumEdges()))
		if err != nil {
			return err
		}
		for _, p := range []struct {
			kind uint32
			part interface {
				Width() int
				Len() int
			}
			ws []uint64
		}{
			{KindOffsets, off, off.Bits().Words()},
			{KindNeighbors, cols, cols.Bits().Words()},
		} {
			if err := w.begin(p.kind, uint32(p.part.Width()), uint64(p.part.Len())); err != nil {
				return err
			}
			if err := w.words(p.ws); err != nil {
				return err
			}
			if err := w.end(); err != nil {
				return err
			}
		}
		return w.finish()
	})
}

// WriteWeightedFile writes pw to path as a weighted-form container.
func WriteWeightedFile(path string, pw *csr.PackedWeighted) error {
	return create(path, func(f *os.File) error {
		off, cols := pw.Parts()
		vals := pw.Vals()
		if off.Len() == 0 {
			return fmt.Errorf("mgraph: refusing to write packed CSR with empty offsets")
		}
		w, err := newContainerWriter(f, flagWeighted, 3, uint64(pw.NumNodes()), uint64(pw.NumEdges()))
		if err != nil {
			return err
		}
		for _, p := range []struct {
			kind uint32
			w, n int
			ws   []uint64
		}{
			{KindOffsets, off.Width(), off.Len(), off.Bits().Words()},
			{KindNeighbors, cols.Width(), cols.Len(), cols.Bits().Words()},
			{KindWeights, vals.Width(), vals.Len(), vals.Bits().Words()},
		} {
			if err := w.begin(p.kind, uint32(p.w), uint64(p.n)); err != nil {
				return err
			}
			if err := w.words(p.ws); err != nil {
				return err
			}
			if err := w.end(); err != nil {
				return err
			}
		}
		return w.finish()
	})
}

// WriteDeltaFile writes dp to path as a delta-form container.
func WriteDeltaFile(path string, dp *csr.DeltaPacked) error {
	return create(path, func(f *os.File) error {
		off, payload := dp.Parts()
		w, err := newContainerWriter(f, flagDelta, 2, uint64(dp.NumNodes()), uint64(dp.NumEdges()))
		if err != nil {
			return err
		}
		if err := w.begin(KindOffsets, uint32(off.Width()), uint64(off.Len())); err != nil {
			return err
		}
		if err := w.words(off.Bits().Words()); err != nil {
			return err
		}
		if err := w.end(); err != nil {
			return err
		}
		if err := w.begin(KindDeltaPayload, 0, uint64(payload.Len())); err != nil {
			return err
		}
		if err := w.words(payload.Words()); err != nil {
			return err
		}
		if err := w.end(); err != nil {
			return err
		}
		return w.finish()
	})
}
