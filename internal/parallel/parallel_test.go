package parallel

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestChunksBalanced(t *testing.T) {
	cases := []struct {
		n, p  int
		sizes []int
	}{
		{10, 3, []int{4, 3, 3}},
		{9, 3, []int{3, 3, 3}},
		{2, 4, []int{1, 1}},
		{0, 4, nil},
		{5, 1, []int{5}},
		{7, 0, []int{7}}, // p<=0 treated as 1
	}
	for _, c := range cases {
		got := Chunks(c.n, c.p)
		if len(got) != len(c.sizes) {
			t.Fatalf("Chunks(%d,%d) = %v, want sizes %v", c.n, c.p, got, c.sizes)
		}
		prev := 0
		for i, r := range got {
			if r.Start != prev {
				t.Errorf("Chunks(%d,%d)[%d] start = %d, want %d", c.n, c.p, i, r.Start, prev)
			}
			if r.Len() != c.sizes[i] {
				t.Errorf("Chunks(%d,%d)[%d] len = %d, want %d", c.n, c.p, i, r.Len(), c.sizes[i])
			}
			prev = r.End
		}
		if prev != c.n {
			t.Errorf("Chunks(%d,%d) covers [0,%d), want [0,%d)", c.n, c.p, prev, c.n)
		}
	}
}

// Property: chunks always tile [0, n) exactly, with sizes differing by at
// most one.
func TestQuickChunksTile(t *testing.T) {
	f := func(n uint16, p uint8) bool {
		chunks := Chunks(int(n), int(p))
		prev, min, max := 0, int(n)+1, -1
		for _, r := range chunks {
			if r.Start != prev || r.Empty() {
				return false
			}
			prev = r.End
			if r.Len() < min {
				min = r.Len()
			}
			if r.Len() > max {
				max = r.Len()
			}
		}
		if prev != int(n) {
			return false
		}
		return len(chunks) == 0 || max-min <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestChunkOf(t *testing.T) {
	n, p := 103, 7
	chunks := Chunks(n, p)
	for c, r := range chunks {
		for i := r.Start; i < r.End; i++ {
			if got := ChunkOf(i, n, p); got != c {
				t.Fatalf("ChunkOf(%d) = %d, want %d", i, got, c)
			}
		}
	}
}

func TestForCoversAllIndices(t *testing.T) {
	for _, p := range []int{1, 2, 3, 8, 100} {
		n := 1000
		seen := make([]int32, n)
		For(n, p, func(_ int, r Range) {
			for i := r.Start; i < r.End; i++ {
				atomic.AddInt32(&seen[i], 1)
			}
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("p=%d index %d visited %d times", p, i, c)
			}
		}
	}
}

func TestForEach(t *testing.T) {
	var sum atomic.Int64
	ForEach(100, 4, func(i int) { sum.Add(int64(i)) })
	if sum.Load() != 4950 {
		t.Fatalf("sum = %d, want 4950", sum.Load())
	}
}

func TestTeamRunAllWorkers(t *testing.T) {
	for _, p := range []int{1, 2, 7} {
		team := NewTeam(p)
		ids := make([]bool, p)
		var mu sync.Mutex
		team.Run(func(w *Worker) {
			if w.Procs() != p {
				t.Errorf("Procs = %d, want %d", w.Procs(), p)
			}
			mu.Lock()
			ids[w.ID()] = true
			mu.Unlock()
		})
		for id, ok := range ids {
			if !ok {
				t.Fatalf("p=%d worker %d never ran", p, id)
			}
		}
	}
}

func TestTeamSyncOrdersPhases(t *testing.T) {
	const p = 4
	team := NewTeam(p)
	var phase1 atomic.Int32
	fail := make(chan string, p)
	team.Run(func(w *Worker) {
		phase1.Add(1)
		w.Sync()
		if phase1.Load() != p {
			fail <- "worker passed barrier before all arrived"
		}
		w.Sync() // barrier must be reusable
	})
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}
}

func TestTeamCriticalIsMutuallyExclusive(t *testing.T) {
	const p = 8
	team := NewTeam(p)
	counter := 0 // intentionally unsynchronized; Critical must protect it
	team.Run(func(w *Worker) {
		for i := 0; i < 1000; i++ {
			w.Critical(func() { counter++ })
		}
	})
	if counter != p*1000 {
		t.Fatalf("counter = %d, want %d", counter, p*1000)
	}
}

func TestBarrierReusableManyRounds(t *testing.T) {
	const parties, rounds = 3, 50
	b := NewBarrier(parties)
	var stage atomic.Int64
	var wg sync.WaitGroup
	wg.Add(parties)
	for i := 0; i < parties; i++ {
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				stage.Add(1)
				b.Wait()
				// After the barrier every party of this round has bumped stage.
				if got := stage.Load(); got < int64((r+1)*parties) {
					t.Errorf("round %d: stage = %d, want >= %d", r, got, (r+1)*parties)
				}
				b.Wait()
			}
		}()
	}
	wg.Wait()
}

func TestChunksNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for negative n")
		}
	}()
	Chunks(-1, 2)
}
