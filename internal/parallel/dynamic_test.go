package parallel

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestForDynamicCoversEveryIndexOnce checks that the work-stealing loop
// visits each index exactly once across grain sizes, participant counts,
// and edge-case n.
func TestForDynamicCoversEveryIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100, 1023, 4096} {
		for _, p := range []int{1, 2, 4, 16, 64} {
			for _, grain := range []int{0, 1, 3, 64, 10000} {
				visits := make([]atomic.Int32, n)
				nn, pp := n, p // per-case snapshots: pool bodies must not read loop counters
				ForDynamic(n, p, grain, func(worker int, r Range) {
					if worker < 0 || worker >= max(pp, 1) {
						t.Errorf("worker id %d out of range [0,%d)", worker, pp)
					}
					if r.Start < 0 || r.End > nn || r.Empty() {
						t.Errorf("bad range [%d,%d) for n=%d", r.Start, r.End, nn)
					}
					for i := r.Start; i < r.End; i++ {
						visits[i].Add(1)
					}
				})
				for i := range visits {
					if got := visits[i].Load(); got != 1 {
						t.Fatalf("n=%d p=%d grain=%d: index %d visited %d times", n, p, grain, i, got)
					}
				}
			}
		}
	}
}

// TestForDynamicWorkerIDsAreDense checks that per-worker scratch indexed by
// the worker id never aliases: two concurrent grabs must not share an id.
func TestForDynamicWorkerIDsAreDense(t *testing.T) {
	const n, p = 10000, 8
	var inUse [p]atomic.Bool
	ForDynamic(n, p, 16, func(worker int, r Range) {
		if worker < 0 || worker >= p {
			t.Errorf("worker id %d out of range [0,%d)", worker, p)
			return
		}
		if !inUse[worker].CompareAndSwap(false, true) {
			t.Errorf("worker id %d used concurrently", worker)
		}
		for i := 0; i < r.Len()*10; i++ {
			_ = i * i // hold the id briefly
		}
		inUse[worker].Store(false)
	})
}

// TestForDynamicBalancesSkew drives a batch where one index is 1000x more
// expensive and checks no participant was starved of chances to steal: the
// call must complete with every index processed (the balancing itself is
// measured by BenchmarkEdgesExistBatch at the repo root).
func TestForDynamicBalancesSkew(t *testing.T) {
	const n = 2048
	var total atomic.Int64
	ForDynamic(n, 8, 4, func(_ int, r Range) {
		for i := r.Start; i < r.End; i++ {
			work := 1
			if i == 0 {
				work = 1000
			}
			s := 0
			for k := 0; k < work; k++ {
				s += k
			}
			total.Add(int64(1 + s%1))
		}
	})
	if total.Load() != n {
		t.Fatalf("processed %d of %d indices", total.Load(), n)
	}
}

// TestForDynamicNested checks the caller-participates discipline keeps
// nested dynamic loops deadlock-free, same as For.
func TestForDynamicNested(t *testing.T) {
	var count atomic.Int64
	ForDynamic(16, 4, 2, func(_ int, outer Range) {
		for i := outer.Start; i < outer.End; i++ {
			ForDynamic(8, 4, 2, func(_ int, inner Range) {
				count.Add(int64(inner.Len()))
			})
		}
	})
	if count.Load() != 16*8 {
		t.Fatalf("nested count = %d, want %d", count.Load(), 16*8)
	}
}

// TestForDynamicPrivatePool checks Pool.ForDynamic on an isolated pool,
// including the inline single-participant path.
func TestForDynamicPrivatePool(t *testing.T) {
	pl := NewPool(3)
	defer pl.Close()
	var mu sync.Mutex
	seen := map[int]bool{}
	pl.ForDynamic(100, 3, 7, func(_ int, r Range) {
		mu.Lock()
		for i := r.Start; i < r.End; i++ {
			if seen[i] {
				t.Errorf("index %d seen twice", i)
			}
			seen[i] = true
		}
		mu.Unlock()
	})
	if len(seen) != 100 {
		t.Fatalf("covered %d of 100", len(seen))
	}
	// n <= grain runs inline on the caller.
	var ran atomic.Bool
	pl.ForDynamic(5, 3, 100, func(worker int, r Range) {
		if worker != 0 || r.Start != 0 || r.End != 5 {
			t.Fatalf("inline path got worker=%d range=[%d,%d)", worker, r.Start, r.End)
		}
		ran.Store(true)
	})
	if !ran.Load() {
		t.Fatal("inline path did not run")
	}
}
