package parallel

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolForCoversIndexSpace: every index is visited exactly once, with
// the same chunk labelling as the fork-join For.
func TestPoolForCoversIndexSpace(t *testing.T) {
	pl := NewPool(4)
	defer pl.Close()
	for _, n := range []int{0, 1, 2, 3, 7, 64, 1000} {
		for _, p := range []int{1, 2, 3, 4, 9, 64} {
			visits := make([]int32, n)
			chunks := Chunks(n, p)
			nn, pp := n, p // per-case snapshots: pool bodies must not read loop counters
			pl.For(n, p, func(c int, r Range) {
				if c < 0 || c >= len(chunks) || chunks[c] != r {
					t.Errorf("n=%d p=%d: chunk %d got range %v, want %v", nn, pp, c, r, chunks[c])
				}
				for i := r.Start; i < r.End; i++ {
					atomic.AddInt32(&visits[i], 1)
				}
			})
			for i, v := range visits {
				if v != 1 {
					t.Fatalf("n=%d p=%d: index %d visited %d times", n, p, i, v)
				}
			}
		}
	}
}

// TestForMatchesForSpawn: the pool-backed package For computes the same
// result as the spawn-per-call baseline.
func TestForMatchesForSpawn(t *testing.T) {
	const n = 10000
	for _, p := range []int{1, 2, 4, 16} {
		got := make([]uint64, n)
		want := make([]uint64, n)
		For(n, p, func(_ int, r Range) {
			for i := r.Start; i < r.End; i++ {
				got[i] = uint64(i) * 3
			}
		})
		forSpawn(n, p, func(_ int, r Range) {
			for i := r.Start; i < r.End; i++ {
				want[i] = uint64(i) * 3
			}
		})
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("p=%d: mismatch at %d", p, i)
			}
		}
	}
}

// TestPoolNestedFor: a body that itself calls For must not deadlock even
// when the nesting exceeds the worker count (caller-participates
// scheduling guarantees progress).
func TestPoolNestedFor(t *testing.T) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		var total atomic.Int64
		For(8, 8, func(_ int, outer Range) {
			For(64, 8, func(_ int, inner Range) {
				For(16, 4, func(_ int, r Range) {
					total.Add(int64(r.Len() * outer.Len() * inner.Len()))
				})
			})
		})
		var want int64
		for _, or := range Chunks(8, 8) {
			for _, ir := range Chunks(64, 8) {
				want += int64(16 * or.Len() * ir.Len())
			}
		}
		if got := total.Load(); got != want {
			t.Errorf("nested total = %d, want %d", got, want)
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("nested For deadlocked")
	}
}

// TestPoolConcurrentCallers: many goroutines share the package pool.
func TestPoolConcurrentCallers(t *testing.T) {
	const callers, n = 16, 5000
	var wg sync.WaitGroup
	wg.Add(callers)
	sums := make([]int64, callers)
	for g := 0; g < callers; g++ {
		go func(g int) {
			defer wg.Done()
			var sum atomic.Int64
			For(n, 4, func(_ int, r Range) {
				s := int64(0)
				for i := r.Start; i < r.End; i++ {
					s += int64(i)
				}
				sum.Add(s)
			})
			sums[g] = sum.Load()
		}(g)
	}
	wg.Wait()
	want := int64(n) * (n - 1) / 2
	for g, s := range sums {
		if s != want {
			t.Errorf("caller %d: sum = %d, want %d", g, s, want)
		}
	}
}

// TestPoolForEach mirrors the ForEach contract on a private pool.
func TestPoolForEach(t *testing.T) {
	pl := NewPool(3)
	defer pl.Close()
	const n = 257
	visits := make([]int32, n)
	pl.ForEach(n, 5, func(i int) { atomic.AddInt32(&visits[i], 1) })
	for i, v := range visits {
		if v != 1 {
			t.Fatalf("index %d visited %d times", i, v)
		}
	}
}

// TestPoolCloseIdempotent: double Close must not panic.
func TestPoolCloseIdempotent(t *testing.T) {
	pl := NewPool(2)
	pl.For(10, 2, func(int, Range) {})
	pl.Close()
	pl.Close()
}

// BenchmarkParallelForOverhead measures dispatch cost of the persistent
// pool against the spawn-per-call baseline across body sizes, from pure
// overhead (n=1, which runs inline) to real work amortizing it (n=1e6).
func BenchmarkParallelForOverhead(b *testing.B) {
	sink := make([]uint64, 1<<20)
	for _, n := range []int{1, 100, 10_000, 1_000_000} {
		body := func(_ int, r Range) {
			for i := r.Start; i < r.End; i++ {
				sink[i]++
			}
		}
		p := DefaultProcs()
		b.Run(fmt.Sprintf("pool/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				For(n, p, body)
			}
		})
		b.Run(fmt.Sprintf("spawn/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				forSpawn(n, p, body)
			}
		})
	}
}
