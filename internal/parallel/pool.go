package parallel

import (
	"sync"
	"sync/atomic"
)

// Pool is a persistent team of worker goroutines that executes parallel-for
// jobs without the per-call goroutine spawn and WaitGroup teardown of the
// fork-join For. Workers park on a channel receive between jobs, so an idle
// pool costs nothing but p blocked goroutines.
//
// Scheduling is caller-participates: For enqueues a job descriptor (a body,
// a chunk list, and an atomic chunk cursor), wakes up to len(chunks)-1
// workers with non-blocking sends, and then claims chunks itself alongside
// them until none remain. Because the caller drains every unclaimed chunk
// before waiting, it only ever waits on chunks actively executing in
// workers — never on queued work — which makes nested Pool.For calls from
// inside a body deadlock-free by induction: a nested caller likewise runs
// its own job to completion. If the wake queue is full the caller simply
// does more of the work itself; parallelism degrades, correctness does not.
type Pool struct {
	p       int
	jobs    chan *job
	closing sync.Once
}

// job is one parallel-for invocation: every participant (workers plus the
// submitting caller) loops claiming chunks via next; the participant that
// finishes the last chunk closes fin.
type job struct {
	body   func(chunk int, r Range)
	chunks []Range
	next   atomic.Int64
	done   atomic.Int64
	fin    chan struct{}
}

func (j *job) run() {
	n := int64(len(j.chunks))
	for {
		c := j.next.Add(1) - 1
		if c >= n {
			return
		}
		j.body(int(c), j.chunks[c])
		if j.done.Add(1) == n {
			close(j.fin)
		}
	}
}

// NewPool starts a pool of p workers; p <= 0 is treated as 1.
func NewPool(p int) *Pool {
	if p <= 0 {
		p = 1
	}
	pl := &Pool{p: p, jobs: make(chan *job, 4*p)}
	for i := 0; i < p; i++ {
		go pl.worker()
	}
	return pl
}

func (pl *Pool) worker() {
	for j := range pl.jobs {
		j.run()
	}
}

// Size returns the number of workers.
func (pl *Pool) Size() int { return pl.p }

// For runs body over [0, n) split into at most p chunks with the same
// (chunk, Range) contract as the package-level For. With one chunk (p == 1
// or n <= 1) it runs inline on the calling goroutine with no allocation or
// synchronization.
func (pl *Pool) For(n, p int, body func(chunk int, r Range)) {
	chunks := Chunks(n, p)
	if len(chunks) <= 1 {
		for c, r := range chunks {
			body(c, r)
		}
		return
	}
	j := &job{body: body, chunks: chunks, fin: make(chan struct{})}
	// Wake at most len(chunks)-1 workers: the caller is the remaining
	// participant. Sends are non-blocking; a full queue just means the
	// caller claims a larger share below. Workers that dequeue j after all
	// chunks are claimed see an exhausted cursor and return immediately.
wake:
	for i := 1; i < len(chunks); i++ {
		select {
		case pl.jobs <- j:
		default:
			break wake
		}
	}
	j.run()
	<-j.fin
}

// ForEach runs body(i) for every i in [0, n) using at most p chunks.
func (pl *Pool) ForEach(n, p int, body func(i int)) {
	pl.For(n, p, func(_ int, r Range) {
		for i := r.Start; i < r.End; i++ {
			body(i)
		}
	})
}

// Close parks no new work and lets the workers exit. Jobs already enqueued
// still complete (their callers also execute them). Close is idempotent;
// For on a closed pool panics like any send on a closed channel, so only
// close pools that have quiesced — the package-level shared pool is never
// closed.
func (pl *Pool) Close() {
	pl.closing.Do(func() { close(pl.jobs) })
}

var (
	sharedPoolOnce sync.Once
	sharedPool     *Pool
)

// defaultPool lazily starts the package-level pool the exported For/ForEach
// helpers dispatch through, sized to GOMAXPROCS. Lazy so that programs that
// only ever run with p == 1 never spawn a worker.
func defaultPool() *Pool {
	sharedPoolOnce.Do(func() { sharedPool = NewPool(DefaultProcs()) })
	return sharedPool
}
