package parallel

import (
	"sync"
	"sync/atomic"
	"time"

	"csrgraph/internal/obs"
)

// Pool is a persistent team of worker goroutines that executes parallel-for
// jobs without the per-call goroutine spawn and WaitGroup teardown of the
// fork-join For. Workers park on a channel receive between jobs, so an idle
// pool costs nothing but p blocked goroutines.
//
// Scheduling is caller-participates: For enqueues a job descriptor (a body,
// a chunk list, and an atomic chunk cursor), wakes up to len(chunks)-1
// workers with non-blocking sends, and then claims chunks itself alongside
// them until none remain. Because the caller drains every unclaimed chunk
// before waiting, it only ever waits on chunks actively executing in
// workers — never on queued work — which makes nested Pool.For calls from
// inside a body deadlock-free by induction: a nested caller likewise runs
// its own job to completion. If the wake queue is full the caller simply
// does more of the work itself; parallelism degrades, correctness does not.
type Pool struct {
	p       int
	jobs    chan runnable
	closing sync.Once
}

// runnable is one enqueued parallel-for job; both the static-chunk job and
// the dynamic work-stealing dynJob satisfy it. wid identifies the executing
// participant for the per-worker obs stripes: pool workers pass their index,
// submitting callers pass the dedicated caller stripe.
type runnable interface{ run(wid int) }

// job is one parallel-for invocation: every participant (workers plus the
// submitting caller) loops claiming chunks via next; the participant that
// finishes the last chunk closes fin.
type job struct {
	body   func(chunk int, r Range)
	chunks []Range
	next   atomic.Int64
	done   atomic.Int64
	fin    chan struct{}
}

//csr:hotpath
func (j *job) run(wid int) {
	n := int64(len(j.chunks))
	// Tallies are recorded per chunk, before the done.Add that may close
	// fin: every chunk's counters therefore happen-before the job is
	// observed complete, so a scrape right after For returns sees exact
	// totals. Cost when metrics are on is two clock reads and two striped
	// adds per chunk — chunks are coarse; when off, one Enabled load.
	timed := obs.Enabled()
	for {
		c := j.next.Add(1) - 1
		if c >= n {
			return
		}
		if timed {
			t0 := time.Now()
			j.body(int(c), j.chunks[c])
			poolBusyNS.Add(wid, time.Since(t0).Nanoseconds())
			poolChunks.Add(wid, 1)
		} else {
			j.body(int(c), j.chunks[c])
		}
		if j.done.Add(1) == n {
			close(j.fin)
		}
	}
}

// dynJob is one dynamic (work-stealing) parallel-for invocation: instead of
// a precomputed chunk list, participants repeatedly grab the next
// grain-sized index range off a shared atomic cursor, so a participant that
// draws a heavy range (a hub node's queries) simply claims fewer ranges
// while its siblings drain the rest. ids hands each participant a dense
// worker index for per-worker scratch state.
type dynJob struct {
	body   func(worker int, r Range)
	n      int64
	grain  int64
	cursor atomic.Int64
	done   atomic.Int64
	ids    atomic.Int64
	fin    chan struct{}
}

//csr:hotpath
func (j *dynJob) run(wid int) {
	id := int(j.ids.Add(1) - 1)
	// Same per-claim recording discipline as job.run: counters land before
	// the done.Add that may close fin, so totals are exact the moment
	// ForDynamic returns.
	timed := obs.Enabled()
	for {
		start := j.cursor.Add(j.grain) - j.grain
		if start >= j.n {
			return
		}
		end := start + j.grain
		if end > j.n {
			end = j.n
		}
		if timed {
			t0 := time.Now()
			j.body(id, Range{int(start), int(end)})
			poolBusyNS.Add(wid, time.Since(t0).Nanoseconds())
			poolGrabs.Add(wid, 1)
		} else {
			j.body(id, Range{int(start), int(end)})
		}
		if j.done.Add(end-start) == j.n {
			close(j.fin)
			return
		}
	}
}

// NewPool starts a pool of p workers; p <= 0 is treated as 1.
func NewPool(p int) *Pool {
	if p <= 0 {
		p = 1
	}
	pl := &Pool{p: p, jobs: make(chan runnable, 4*p)}
	for i := 0; i < p; i++ {
		go pl.worker(i)
	}
	return pl
}

//csr:hotpath
func (pl *Pool) worker(id int) {
	for {
		// Time spent parked between jobs is the pool's idle series; the
		// clock is read only while metrics are enabled, and a toggle while
		// parked just drops that interval.
		var t0 time.Time
		if obs.Enabled() {
			t0 = time.Now()
		}
		j, ok := <-pl.jobs
		if !ok {
			return
		}
		if !t0.IsZero() {
			poolIdleNS.Add(id, time.Since(t0).Nanoseconds())
		}
		j.run(id)
	}
}

// Size returns the number of workers.
func (pl *Pool) Size() int { return pl.p }

// For runs body over [0, n) split into at most p chunks with the same
// (chunk, Range) contract as the package-level For. With one chunk (p == 1
// or n <= 1) it runs inline on the calling goroutine with no allocation or
// synchronization.
func (pl *Pool) For(n, p int, body func(chunk int, r Range)) {
	chunks := Chunks(n, p)
	if len(chunks) <= 1 {
		for c, r := range chunks {
			body(c, r)
		}
		return
	}
	poolJobs.Inc()
	j := &job{body: body, chunks: chunks, fin: make(chan struct{})}
	// Wake at most len(chunks)-1 workers: the caller is the remaining
	// participant. Sends are non-blocking; a full queue just means the
	// caller claims a larger share below. Workers that dequeue j after all
	// chunks are claimed see an exhausted cursor and return immediately.
wake:
	for i := 1; i < len(chunks); i++ {
		select {
		case pl.jobs <- j:
		default:
			break wake
		}
	}
	j.run(callerStripe)
	<-j.fin
}

// ForDynamic runs body over [0, n) with work-stealing scheduling: up to p
// participants (woken workers plus the submitting caller) repeatedly claim
// the next grain-sized index range off an atomic cursor until the space is
// exhausted. Unlike For's static split into p equal chunks, a participant
// that lands on expensive indices — a hub node's row in a batched query —
// claims fewer ranges while the others drain the rest, so skewed per-index
// cost no longer stretches the whole call to the slowest chunk.
//
// body receives a dense worker index in [0, p) stable across that
// participant's grabs, for per-worker scratch (decode buffers); it does NOT
// identify a chunk. grain <= 0 picks a default of ~8 grabs per participant.
// The same caller-participates discipline as For applies, so nested calls
// remain deadlock-free and a full wake queue only shifts work to the
// caller.
func (pl *Pool) ForDynamic(n, p, grain int, body func(worker int, r Range)) {
	if n <= 0 {
		return
	}
	if p <= 0 {
		p = 1
	}
	if grain <= 0 {
		grain = n / (8 * p)
		if grain < 1 {
			grain = 1
		}
	}
	if p == 1 || n <= grain {
		body(0, Range{0, n})
		return
	}
	poolDynJobs.Inc()
	j := &dynJob{body: body, n: int64(n), grain: int64(grain), fin: make(chan struct{})}
	// Wake one fewer participant than there are grains to claim (capped at
	// p-1): the caller is the last participant, and every send is
	// non-blocking so a full queue degrades to the caller doing more.
	parts := (n + grain - 1) / grain
	if parts > p {
		parts = p
	}
wake:
	for i := 1; i < parts; i++ {
		select {
		case pl.jobs <- j:
		default:
			break wake
		}
	}
	j.run(callerStripe)
	<-j.fin
}

// ForEach runs body(i) for every i in [0, n) using at most p chunks.
func (pl *Pool) ForEach(n, p int, body func(i int)) {
	pl.For(n, p, func(_ int, r Range) {
		for i := r.Start; i < r.End; i++ {
			body(i)
		}
	})
}

// Close parks no new work and lets the workers exit. Jobs already enqueued
// still complete (their callers also execute them). Close is idempotent;
// For on a closed pool panics like any send on a closed channel, so only
// close pools that have quiesced — the package-level shared pool is never
// closed.
func (pl *Pool) Close() {
	pl.closing.Do(func() { close(pl.jobs) })
}

var (
	sharedPoolOnce sync.Once
	sharedPool     *Pool
)

// defaultPool lazily starts the package-level pool the exported For/ForEach
// helpers dispatch through, sized to GOMAXPROCS. Lazy so that programs that
// only ever run with p == 1 never spawn a worker.
func defaultPool() *Pool {
	sharedPoolOnce.Do(func() { sharedPool = NewPool(DefaultProcs()) })
	return sharedPool
}
