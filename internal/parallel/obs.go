package parallel

import "csrgraph/internal/obs"

// Pool instrumentation. Per-worker series are striped one cache line per
// worker so recording never couples the team; stripe layout is the shared
// pool's geometry — worker ids 0..DefaultProcs()-1 from the worker
// goroutines, plus one extra stripe for submitting callers (they
// participate in every job they enqueue). Private pools fold into the same
// stripes modulo the count, which keeps the totals exact and only blurs the
// per-worker attribution for non-default pools.
//
// busy is wall time spent inside job bodies; idle is wall time workers
// spend parked between jobs. Their ratio is the load-imbalance signal the
// Ligra-style runtimes the paper builds on tune against.
var (
	callerStripe = DefaultProcs()

	poolJobs    = obs.GetCounter("csrgraph_pool_jobs_total")
	poolDynJobs = obs.GetCounter("csrgraph_pool_dyn_jobs_total")
	poolChunks  = obs.GetWorkerCounter("csrgraph_pool_chunks_total", DefaultProcs()+1)
	poolGrabs   = obs.GetWorkerCounter("csrgraph_pool_grabs_total", DefaultProcs()+1)
	poolBusyNS  = obs.GetWorkerCounter("csrgraph_pool_busy_ns_total", DefaultProcs()+1)
	poolIdleNS  = obs.GetWorkerCounter("csrgraph_pool_idle_ns_total", DefaultProcs()+1)
)
