package parallel

import (
	"sync/atomic"
	"testing"

	"csrgraph/internal/obs"
)

// poolSnapshot captures the cumulative pool counters so tests on the shared
// global series can assert deltas.
type poolSnapshot struct {
	jobs, dynJobs, chunks, grabs, busy, idle int64
}

func snapPool() poolSnapshot {
	return poolSnapshot{
		jobs:    poolJobs.Value(),
		dynJobs: poolDynJobs.Value(),
		chunks:  poolChunks.Total(),
		grabs:   poolGrabs.Total(),
		busy:    poolBusyNS.Total(),
		idle:    poolIdleNS.Total(),
	}
}

func TestPoolForMetrics(t *testing.T) {
	obs.SetEnabled(true)
	defer obs.SetEnabled(false)
	pl := NewPool(4)
	defer pl.Close()
	before := snapPool()

	const n = 1 << 14
	var sum atomic.Int64
	pl.For(n, 4, func(_ int, r Range) {
		var local int64
		for i := r.Start; i < r.End; i++ {
			local += int64(i)
		}
		sum.Add(local)
	})
	if want := int64(n) * (n - 1) / 2; sum.Load() != want {
		t.Fatalf("sum = %d, want %d", sum.Load(), want)
	}
	after := snapPool()
	if d := after.jobs - before.jobs; d != 1 {
		t.Fatalf("jobs delta = %d, want 1", d)
	}
	if d := after.chunks - before.chunks; d != 4 {
		t.Fatalf("chunks delta = %d, want 4", d)
	}
	if after.busy <= before.busy {
		t.Fatal("busy time did not advance")
	}
}

func TestPoolForDynamicMetrics(t *testing.T) {
	obs.SetEnabled(true)
	defer obs.SetEnabled(false)
	pl := NewPool(4)
	defer pl.Close()
	before := snapPool()

	const n, grain = 1 << 12, 1 << 8
	var count atomic.Int64
	pl.ForDynamic(n, 4, grain, func(_ int, r Range) {
		count.Add(int64(r.Len()))
	})
	if count.Load() != n {
		t.Fatalf("visited %d indices, want %d", count.Load(), n)
	}
	after := snapPool()
	if d := after.dynJobs - before.dynJobs; d != 1 {
		t.Fatalf("dyn jobs delta = %d, want 1", d)
	}
	if d := after.grabs - before.grabs; d != n/grain {
		t.Fatalf("grabs delta = %d, want %d", d, n/grain)
	}
}

// TestPoolMetricsDisabled pins the off-by-default contract: running jobs
// with collection off must not move any counter.
func TestPoolMetricsDisabled(t *testing.T) {
	pl := NewPool(4)
	defer pl.Close()
	before := snapPool()
	pl.For(1024, 4, func(_ int, r Range) {})
	pl.ForDynamic(1024, 4, 64, func(_ int, r Range) {})
	after := snapPool()
	if before != after {
		t.Fatalf("counters moved while disabled: %+v -> %+v", before, after)
	}
}
