// Package parallel provides the "p processors" execution substrate the
// paper's algorithms are written against: balanced chunk partitioning of an
// index space, a fork-join worker team with barriers (the pseudocode's
// sync()) and a critical section (the pseudocode's Lock()/Unlock()), and
// simple parallel-for helpers.
//
// The paper runs on a 32-core machine with explicit processors; here each
// "processor" is a goroutine. All helpers degrade gracefully to sequential
// execution when p == 1, so correctness tests can compare p=1 against p>1
// outputs directly.
//
// Execution substrate: For and ForEach with p > 1 dispatch onto a lazily
// started package-level Pool — a persistent set of GOMAXPROCS workers
// parked on a channel — instead of spawning goroutines per call, so the
// ~30 batched-query and construction call sites pay wake-ups, not spawns.
// Pool.For uses caller-participates scheduling (the submitting goroutine
// claims chunks alongside the workers), which keeps nested parallel-for
// calls deadlock-free and preserves the p == 1 inline fast path; NewPool
// builds private pools for callers that want isolation. Bodies must not
// assume all chunks run concurrently — a body that blocks waiting on a
// sibling chunk needs Team, whose barrier semantics guarantee one
// goroutine per worker.
//
// ForDynamic adds work-stealing scheduling on the same pool: instead of a
// static p-way split, participants claim small grain-sized index ranges
// off an atomic cursor, which keeps batches with power-law per-index cost
// (hub nodes) balanced. The query engine routes batched queries through it.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
)

// Range is a half-open index interval [Start, End).
type Range struct {
	Start, End int
}

// Len returns the number of indices in the range.
func (r Range) Len() int { return r.End - r.Start }

// Empty reports whether the range contains no indices.
func (r Range) Empty() bool { return r.End <= r.Start }

// DefaultProcs returns the default processor count for this host.
func DefaultProcs() int { return runtime.GOMAXPROCS(0) }

// Chunks partitions [0, n) into at most p balanced contiguous ranges. The
// first n%p ranges are one element longer, mirroring how the paper assigns
// chunkSize = ceil(n/p) work to each processor. When n < p only n non-empty
// ranges are returned; p <= 0 is treated as 1.
func Chunks(n, p int) []Range {
	if n < 0 {
		panic(fmt.Sprintf("parallel: negative n %d", n))
	}
	if p <= 0 {
		p = 1
	}
	if p > n {
		p = n
	}
	if p == 0 {
		return nil
	}
	out := make([]Range, p)
	base, extra := n/p, n%p
	start := 0
	for i := range out {
		size := base
		if i < extra {
			size++
		}
		out[i] = Range{start, start + size}
		start += size
	}
	return out
}

// ChunkOf returns the index of the chunk (as produced by Chunks(n, p)) that
// contains index i.
func ChunkOf(i, n, p int) int {
	chunks := Chunks(n, p)
	for c, r := range chunks {
		if i >= r.Start && i < r.End {
			return c
		}
	}
	panic(fmt.Sprintf("parallel: index %d not in [0,%d)", i, n))
}

// For runs body over [0, n) split into at most p chunks and waits for all
// of them. body receives the chunk index and range. With p == 1 (or n
// small) it runs inline on the calling goroutine; otherwise the chunks are
// executed on the package's persistent worker pool (see Pool), avoiding a
// goroutine spawn and WaitGroup teardown per call.
func For(n, p int, body func(chunk int, r Range)) {
	if p <= 1 || n <= 1 {
		// Inline fast path that never touches (or lazily creates) the pool.
		for c, r := range Chunks(n, p) {
			body(c, r)
		}
		return
	}
	defaultPool().For(n, p, body)
}

// forSpawn is the pre-pool implementation — one goroutine spawned per chunk
// per call. Kept as the baseline BenchmarkParallelForOverhead measures the
// pool against.
func forSpawn(n, p int, body func(chunk int, r Range)) {
	chunks := Chunks(n, p)
	if len(chunks) <= 1 {
		for c, r := range chunks {
			body(c, r)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(chunks))
	for c, r := range chunks {
		go func(c int, r Range) {
			defer wg.Done()
			body(c, r)
		}(c, r)
	}
	wg.Wait()
}

// ForDynamic runs body over [0, n) with work-stealing scheduling on the
// package pool: participants grab grain-sized index ranges off a shared
// atomic cursor instead of receiving one static chunk each, which keeps
// skew-heavy batches (power-law degree distributions) balanced. body
// receives a dense worker index in [0, p) for per-worker scratch state and
// may be called many times per worker; grain <= 0 picks a default. See
// Pool.ForDynamic.
func ForDynamic(n, p, grain int, body func(worker int, r Range)) {
	if p <= 1 || n <= 1 {
		if n > 0 {
			body(0, Range{0, n})
		}
		return
	}
	defaultPool().ForDynamic(n, p, grain, body)
}

// ForEach runs body(i) for every i in [0, n) using at most p goroutines.
func ForEach(n, p int, body func(i int)) {
	For(n, p, func(_ int, r Range) {
		for i := r.Start; i < r.End; i++ {
			body(i)
		}
	})
}

// Team is a fixed-size group of workers executing one SPMD function, with
// barrier synchronization and a shared critical section. It models the
// paper's processor team: Algorithm 1's sync() is Worker.Sync and its
// Lock()/Unlock() block is Worker.Critical.
type Team struct {
	p       int
	barrier *Barrier
	mu      sync.Mutex
}

// NewTeam creates a team of p workers. p <= 0 is treated as 1.
func NewTeam(p int) *Team {
	if p <= 0 {
		p = 1
	}
	return &Team{p: p, barrier: NewBarrier(p)}
}

// Size returns the number of workers in the team.
func (t *Team) Size() int { return t.p }

// Run invokes body once per worker concurrently and returns when every
// worker has finished. Workers are numbered 0..p-1.
func (t *Team) Run(body func(w *Worker)) {
	if t.p == 1 {
		body(&Worker{team: t, id: 0})
		return
	}
	var wg sync.WaitGroup
	wg.Add(t.p)
	for id := 0; id < t.p; id++ {
		go func(id int) {
			defer wg.Done()
			body(&Worker{team: t, id: id})
		}(id)
	}
	wg.Wait()
}

// Worker is one member of a Team, passed to the SPMD body.
type Worker struct {
	team *Team
	id   int
}

// ID returns the worker index in [0, team size).
func (w *Worker) ID() int { return w.id }

// Procs returns the team size.
func (w *Worker) Procs() int { return w.team.p }

// Sync blocks until every worker in the team has called Sync. It is the
// pseudocode's sync() barrier and may be called repeatedly.
func (w *Worker) Sync() { w.team.barrier.Wait() }

// Critical runs fn while holding the team's mutual-exclusion lock — the
// pseudocode's Lock()/Unlock() region.
func (w *Worker) Critical(fn func()) {
	w.team.mu.Lock()
	defer w.team.mu.Unlock()
	fn()
}

// Barrier is a reusable synchronization barrier for a fixed number of
// parties.
type Barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	parties int
	waiting int
	phase   uint64
}

// NewBarrier returns a barrier for n parties; n <= 0 is treated as 1.
func NewBarrier(n int) *Barrier {
	if n <= 0 {
		n = 1
	}
	b := &Barrier{parties: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Wait blocks until all parties have called Wait, then releases them all.
// The barrier resets automatically for reuse.
func (b *Barrier) Wait() {
	b.mu.Lock()
	defer b.mu.Unlock()
	phase := b.phase
	b.waiting++
	if b.waiting == b.parties {
		b.waiting = 0
		b.phase++
		b.cond.Broadcast()
		return
	}
	for phase == b.phase {
		b.cond.Wait()
	}
}
