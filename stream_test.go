package csrgraph

import (
	"reflect"
	"testing"
)

func TestStreamBuilderPublic(t *testing.T) {
	s := NewStreamBuilder(WithProcs(2), WithNumNodes(5))
	s.Add(Edge{U: 0, V: 1}, Edge{U: 1, V: 2})
	if !s.HasEdge(0, 1) {
		t.Fatal("pending edge invisible")
	}
	g := s.Snapshot()
	if g.NumEdges() != 2 || !g.HasEdge(1, 2) {
		t.Fatal("snapshot wrong")
	}
	// Snapshot is immutable against later updates.
	s.Delete(Edge{U: 0, V: 1})
	if !g.HasEdge(0, 1) {
		t.Fatal("old snapshot mutated")
	}
	g2 := s.Snapshot()
	if g2.HasEdge(0, 1) {
		t.Fatal("delete not applied")
	}
}

func TestStreamFromExistingGraph(t *testing.T) {
	g, err := Build([]Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	if err != nil {
		t.Fatal(err)
	}
	s := StreamFrom(g, WithProcs(2))
	s.Add(Edge{U: 2, V: 0})
	g2 := s.Snapshot()
	if !g2.HasEdge(2, 0) || !g2.HasEdge(0, 1) {
		t.Fatal("merge with base failed")
	}
	if got := g2.Neighbors(2); !reflect.DeepEqual(got, []uint32{0}) {
		t.Fatalf("Neighbors(2) = %v", got)
	}
	if a, d := s.Pending(); a != 0 || d != 0 {
		t.Fatal("pending not drained")
	}
}

func TestStreamSnapshotFeedsAnalytics(t *testing.T) {
	s := NewStreamBuilder(WithProcs(2))
	s.Add(Edge{U: 0, V: 1}, Edge{U: 1, V: 0}, Edge{U: 1, V: 2}, Edge{U: 2, V: 1})
	g := s.Snapshot()
	dist := g.BFS(0, 2)
	if dist[2] != 2 {
		t.Fatalf("dist = %v", dist)
	}
	cg := g.Compress()
	if cg.NumEdges() != 4 {
		t.Fatal("compression of streamed graph failed")
	}
}
