// Query-side benchmarks for the skew-aware batched query engine: the
// zero-decode packed search and the hot-row cache, measured against the
// decode-and-scan baselines they replace.
//
//	BenchmarkEdgesExistBatch — existence probes on a 10M-edge packed CSR,
//	    algo=linear (decode + early-exit scan, the pre-engine baseline),
//	    algo=binary (decode + binary search), algo=search (zero-decode
//	    packed search with galloping on hub rows). Probe sources are
//	    degree-biased (sampled from edge endpoints), matching the
//	    traffic-follows-hubs skew of social-network workloads.
//	BenchmarkNeighborsBatch — batched row decodes, cache=cold (straight
//	    packed decode) vs cache=warm (hot-row cache, pre-warmed), on a
//	    hub-heavy batch and a uniform batch.
//
// `make bench-compare-query` prints the delta tables from exactly these
// sub-benchmarks.
package csrgraph

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"csrgraph/internal/csr"
	"csrgraph/internal/edgelist"
	"csrgraph/internal/mgraph"
	"csrgraph/internal/query"
)

// queryBenchEdges is the ISSUE's acceptance size: 10M edges.
const queryBenchEdges = 10_000_000

type queryBenchGraph struct {
	pk    *csr.Packed
	mpk   *csr.Packed   // the same graph served from an mmap-backed container
	edges edgelist.List // raw generated list, for degree-biased sampling
}

var (
	queryBenchOnce sync.Once
	queryBench     map[string]*queryBenchGraph
)

// queryBenchSetup builds the 10M-edge packed CSRs once per distribution,
// reusing the construction benchmarks' deterministic edge lists.
func queryBenchSetup(b *testing.B) map[string]*queryBenchGraph {
	b.Helper()
	inputs := sortBenchInputs(b)
	queryBenchOnce.Do(func() {
		queryBench = map[string]*queryBenchGraph{}
		for _, dist := range []string{"uniform", "powerlaw"} {
			src := inputs[fmt.Sprintf("dist=%s/edges=%d", dist, queryBenchEdges)]
			g, err := Build(src, WithProcs(4))
			if err != nil {
				panic(err)
			}
			pk := csr.PackMatrix(g.m, 4)
			// The mmap-backed twin: written once, mapped, and held open for
			// the process lifetime (benchmarks only compare query paths, so
			// the mapping is never closed).
			dir, err := os.MkdirTemp("", "csrquerybench-")
			if err != nil {
				panic(err)
			}
			path := filepath.Join(dir, "g.csrc")
			if err := mgraph.WritePackedFile(path, pk); err != nil {
				panic(err)
			}
			m, err := mgraph.Open(path)
			if err != nil {
				panic(err)
			}
			queryBench[dist] = &queryBenchGraph{pk: pk, mpk: m.Packed(), edges: src}
		}
	})
	return queryBench
}

// benchRNG is the same splitmix-style generator the other benchmarks use,
// so probe sets are deterministic without math/rand.
func benchRNG(state uint64) func() uint32 {
	return func() uint32 {
		state = state*6364136223846793005 + 1442695040888963407
		return uint32(state >> 33)
	}
}

// queryBenchProbes builds nq existence probes: sources are degree-biased
// (drawn from edge endpoints, so hub rows are probed in proportion to
// their traffic), half the targets are real neighbors and half random.
func queryBenchProbes(g *queryBenchGraph, nq int) []edgelist.Edge {
	next := benchRNG(23)
	n := uint32(g.pk.NumNodes())
	probes := make([]edgelist.Edge, nq)
	for i := range probes {
		e := g.edges[next()%uint32(len(g.edges))]
		if i%2 == 0 {
			probes[i] = e // present
		} else {
			probes[i] = edgelist.Edge{U: e.U, V: next() % n} // usually absent
		}
	}
	return probes
}

// BenchmarkEdgesExistBatch is the engine's acceptance benchmark: the
// zero-decode search path against the decode-and-scan baselines on the
// 10M-edge graphs.
func BenchmarkEdgesExistBatch(b *testing.B) {
	graphs := queryBenchSetup(b)
	const nq = 4096
	for _, dist := range []string{"uniform", "powerlaw"} {
		g := graphs[dist]
		probes := queryBenchProbes(g, nq)
		algos := []struct {
			name string
			fn   func(query.Source, []edgelist.Edge, int) []bool
		}{
			{"linear", query.EdgesExistBatch},
			{"binary", query.EdgesExistBatchBinary},
			{"search", query.EdgesExistBatchSearch},
		}
		// The regression gate for the mmap path: the zero-decode search on
		// the mapped container must match algo=search on the heap arrays.
		b.Run(fmt.Sprintf("dist=%s/edges=%d/algo=search-mmap", dist, queryBenchEdges), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				query.EdgesExistBatchSearch(g.mpk, probes, 4)
			}
			b.ReportMetric(float64(nq)*float64(b.N)/b.Elapsed().Seconds(), "queries/s")
		})
		for _, algo := range algos {
			b.Run(fmt.Sprintf("dist=%s/edges=%d/algo=%s", dist, queryBenchEdges, algo.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					algo.fn(g.pk, probes, 4)
				}
				b.ReportMetric(float64(nq)*float64(b.N)/b.Elapsed().Seconds(), "queries/s")
			})
		}
	}
}

// queryBenchBatch builds a node batch: "hub" draws half its entries from
// the top-degree nodes (the repeated-hub traffic a hot-row cache absorbs),
// "uniform" draws all entries uniformly.
func queryBenchBatch(g *queryBenchGraph, kind string, size int) []edgelist.NodeID {
	next := benchRNG(29)
	n := uint32(g.pk.NumNodes())
	var hubs []edgelist.NodeID
	if kind == "hub" {
		// Top 64 nodes by degree, via one linear scan with a small
		// insertion-sorted tail.
		hubs = make([]edgelist.NodeID, 0, 64)
		degs := make([]int, 0, 64)
		for u := uint32(0); u < n; u++ {
			d := g.pk.Degree(u)
			if len(hubs) < 64 || d > degs[len(degs)-1] {
				i := len(degs)
				if len(hubs) < 64 {
					hubs = append(hubs, 0)
					degs = append(degs, 0)
				} else {
					i = len(degs) - 1
				}
				for i > 0 && degs[i-1] < d {
					hubs[i], degs[i] = hubs[i-1], degs[i-1]
					i--
				}
				hubs[i], degs[i] = u, d
			}
		}
	}
	batch := make([]edgelist.NodeID, size)
	for i := range batch {
		if kind == "hub" && i%2 == 0 {
			batch[i] = hubs[int(next())%len(hubs)]
		} else {
			batch[i] = next() % n
		}
	}
	return batch
}

// BenchmarkNeighborsBatch measures batched row decodes with and without
// the hot-row cache. cache=cold decodes every row from the packed CSR;
// cache=warm serves repeats from a pre-warmed 64MB cache.
func BenchmarkNeighborsBatch(b *testing.B) {
	graphs := queryBenchSetup(b)
	const size = 2048
	for _, dist := range []string{"uniform", "powerlaw"} {
		g := graphs[dist]
		for _, kind := range []string{"hub", "uniform"} {
			batch := queryBenchBatch(g, kind, size)
			warm := query.Cached(g.pk, query.NewRowCacheShards(64<<20, 16))
			query.NeighborsBatch(warm, batch, 4) // warm the cache off the clock
			for cacheLabel, src := range map[string]query.Source{"cold": g.pk, "warm": warm, "mmap": g.mpk} {
				b.Run(fmt.Sprintf("dist=%s/batch=%s/cache=%s", dist, kind, cacheLabel), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						query.NeighborsBatch(src, batch, 4)
					}
					b.ReportMetric(float64(size)*float64(b.N)/b.Elapsed().Seconds(), "queries/s")
				})
			}
		}
	}
}
