package csrgraph_test

import (
	"fmt"

	"csrgraph"
)

// ExampleBuild constructs a small directed graph and queries it.
func ExampleBuild() {
	g, err := csrgraph.Build([]csrgraph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(g.Neighbors(1))
	fmt.Println(g.HasEdge(2, 0))
	fmt.Println(g.HasEdge(0, 2))
	// Output:
	// [2]
	// true
	// false
}

// ExampleGraph_Compress shows the bit-packed form answering the same
// queries at a fraction of the size.
func ExampleGraph_Compress() {
	g, _ := csrgraph.Build([]csrgraph.Edge{
		{U: 0, V: 5}, {U: 1, V: 6}, {U: 1, V: 7}, {U: 2, V: 7}, {U: 3, V: 8},
		{U: 3, V: 9}, {U: 4, V: 9}, {U: 5, V: 0}, {U: 6, V: 1}, {U: 7, V: 1},
		{U: 7, V: 2}, {U: 8, V: 2}, {U: 8, V: 3}, {U: 9, V: 3},
	})
	cg := g.Compress()
	fmt.Println(cg.Neighbors(7))
	fmt.Println(cg.NumBits(), "bits per neighbor")
	fmt.Println(cg.SizeBytes(), "bytes vs", g.SizeBytes(), "uncompressed")
	// Output:
	// [1 2]
	// 4 bits per neighbor
	// 13 bytes vs 100 uncompressed
}

// ExampleBuildTemporal stores a toggle-event stream as a differential
// time-evolving CSR and answers point-in-time queries.
func ExampleBuildTemporal() {
	tg, _ := csrgraph.BuildTemporal([]csrgraph.TemporalEdge{
		{U: 0, V: 1, T: 0}, // appears at frame 0
		{U: 0, V: 1, T: 2}, // disappears at frame 2
		{U: 0, V: 1, T: 3}, // reappears at frame 3
	}, 4)
	for t := 0; t < 4; t++ {
		fmt.Printf("frame %d: %v\n", t, tg.Active(0, 1, t))
	}
	// Output:
	// frame 0: true
	// frame 1: true
	// frame 2: false
	// frame 3: true
}

// ExampleCompressedGraph_NeighborsBatch answers a batch of neighborhood
// queries in parallel over the compressed structure.
func ExampleCompressedGraph_NeighborsBatch() {
	g, _ := csrgraph.Build([]csrgraph.Edge{
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 1, V: 2},
	})
	cg := g.Compress()
	rows := cg.NeighborsBatch([]csrgraph.NodeID{0, 1, 2}, 2)
	fmt.Println(rows)
	// Output:
	// [[1 2] [2] []]
}

// ExampleBuildWeighted builds the weighted three-array CSR and runs a
// shortest-path query over the vA cost array.
func ExampleBuildWeighted() {
	g, _ := csrgraph.BuildWeighted([]csrgraph.WeightedEdge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 0, V: 2, W: 5},
	})
	path, cost := g.ShortestPath(0, 2)
	fmt.Println(path, cost)
	// Output:
	// [0 1 2] 2
}

// ExampleNewStreamBuilder maintains a graph under live edge updates and
// snapshots it into an immutable, queryable CSR.
func ExampleNewStreamBuilder() {
	sb := csrgraph.NewStreamBuilder(csrgraph.WithNumNodes(3))
	sb.Add(csrgraph.Edge{U: 0, V: 1}, csrgraph.Edge{U: 1, V: 2})
	sb.Delete(csrgraph.Edge{U: 0, V: 1})
	g := sb.Snapshot()
	fmt.Println(g.HasEdge(0, 1), g.HasEdge(1, 2))
	// Output:
	// false true
}

// ExampleGraph_BFS runs a parallel breadth-first search.
func ExampleGraph_BFS() {
	g, _ := csrgraph.Build([]csrgraph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3},
	})
	fmt.Println(g.BFS(0, 2))
	// Output:
	// [0 1 2 3]
}

// ExampleTemporalGraph_Checkpoint accelerates point-in-time queries with
// periodic snapshot checkpoints.
func ExampleTemporalGraph_Checkpoint() {
	tg, _ := csrgraph.BuildTemporal([]csrgraph.TemporalEdge{
		{U: 0, V: 1, T: 0}, {U: 0, V: 1, T: 2},
	}, 4)
	ck, _ := tg.Checkpoint(2)
	fmt.Println(ck.Active(0, 1, 1), ck.Active(0, 1, 3))
	// Output:
	// true false
}

// ExampleWeightedGraph_MinimumSpanningForest extracts an MST from a
// symmetrized weighted graph.
func ExampleWeightedGraph_MinimumSpanningForest() {
	g, _ := csrgraph.BuildWeighted([]csrgraph.WeightedEdge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 0, W: 1},
		{U: 1, V: 2, W: 2}, {U: 2, V: 1, W: 2},
		{U: 0, V: 2, W: 9}, {U: 2, V: 0, W: 9},
	})
	forest, total := g.MinimumSpanningForest(2)
	fmt.Println(len(forest), total)
	// Output:
	// 2 3
}
