package csrgraph

import (
	"csrgraph/internal/stream"
)

// StreamBuilder maintains a graph under a stream of edge additions and
// deletions, folding them into the CSR in parallel batches — the paper's
// graph-evolution setting. It is safe for concurrent use.
type StreamBuilder struct {
	b     *stream.Builder
	procs int
}

// NewStreamBuilder starts an empty evolving graph.
func NewStreamBuilder(opts ...Option) *StreamBuilder {
	c := buildConfig(opts)
	return &StreamBuilder{b: stream.NewBuilder(nil, c.numNodes, c.procs), procs: c.procs}
}

// StreamFrom starts an evolving graph from an existing Graph.
func StreamFrom(g *Graph, opts ...Option) *StreamBuilder {
	c := buildConfig(opts)
	n := c.numNodes
	if g.NumNodes() > n {
		n = g.NumNodes()
	}
	return &StreamBuilder{b: stream.NewBuilder(g.m, n, c.procs), procs: c.procs}
}

// Add buffers edge insertions.
func (s *StreamBuilder) Add(edges ...Edge) { s.b.Add(edges...) }

// Delete buffers edge removals.
func (s *StreamBuilder) Delete(edges ...Edge) { s.b.Delete(edges...) }

// Pending returns the buffered addition and deletion counts.
func (s *StreamBuilder) Pending() (adds, dels int) { return s.b.Pending() }

// HasEdge answers against the logical state (base plus pending updates)
// without flushing.
func (s *StreamBuilder) HasEdge(u, v NodeID) bool { return s.b.HasEdge(u, v) }

// Snapshot folds all pending updates in parallel and returns the current
// graph. The returned Graph is immutable; later updates do not affect it
// until the next Snapshot.
func (s *StreamBuilder) Snapshot() *Graph {
	return &Graph{m: s.b.Flush(), procs: s.procs}
}
