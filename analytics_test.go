package csrgraph

import (
	"math"
	"reflect"
	"testing"
)

func analyticsFixture(t *testing.T) (*Graph, *CompressedGraph) {
	t.Helper()
	raw, err := GenerateRMAT(10, 6000, 77, 2)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(raw, WithSymmetrize(), WithProcs(2))
	if err != nil {
		t.Fatal(err)
	}
	return g, g.Compress()
}

func TestBFSPlainAndCompressedAgree(t *testing.T) {
	g, cg := analyticsFixture(t)
	d1 := g.BFS(0, 1)
	d4 := g.BFS(0, 4)
	dc := cg.BFS(0, 4)
	if !reflect.DeepEqual(d1, d4) || !reflect.DeepEqual(d1, dc) {
		t.Fatal("BFS results differ across p or representation")
	}
	if d1[0] != 0 {
		t.Fatal("source distance must be 0")
	}
}

func TestBFSHybridPublic(t *testing.T) {
	g, _ := analyticsFixture(t)
	if !reflect.DeepEqual(g.BFSHybrid(0, 2), g.BFS(0, 2)) {
		t.Fatal("hybrid BFS diverges from plain BFS")
	}
	// Directed case: hybrid must pull over the true transpose.
	dg, err := Build([]Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dg.BFSHybrid(0, 2), dg.BFS(0, 2)) {
		t.Fatal("directed hybrid BFS diverges")
	}
}

func TestConnectedComponentsPublic(t *testing.T) {
	g, err := Build([]Edge{{U: 0, V: 1}, {U: 2, V: 3}}, WithSymmetrize())
	if err != nil {
		t.Fatal(err)
	}
	labels := g.ConnectedComponents(2)
	if !reflect.DeepEqual(labels, []uint32{0, 0, 2, 2}) {
		t.Fatalf("labels = %v", labels)
	}
	cg := g.Compress()
	if !reflect.DeepEqual(cg.ConnectedComponents(2), labels) {
		t.Fatal("compressed CC disagrees")
	}
}

func TestPageRankPublic(t *testing.T) {
	g, cg := analyticsFixture(t)
	r := g.PageRank(0.85, 30, 1e-9, 2)
	rc := cg.PageRank(0.85, 30, 1e-9, 2)
	var sum float64
	for i := range r {
		sum += r[i]
		if math.Abs(r[i]-rc[i]) > 1e-12 {
			t.Fatal("compressed PageRank disagrees")
		}
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("ranks sum to %g", sum)
	}
}

func TestTrianglesAndStatsPublic(t *testing.T) {
	g, cg := analyticsFixture(t)
	if g.CountTriangles(2) != cg.CountTriangles(2) {
		t.Fatal("triangle counts differ")
	}
	st, stc := g.DegreeStats(2), cg.DegreeStats(2)
	if st.Max != stc.Max || st.Mean != stc.Mean || st.Isolated != stc.Isolated {
		t.Fatal("degree stats differ")
	}
	if st.Max <= 0 {
		t.Fatal("max degree should be positive")
	}
}

func TestTwoHopPublicConsistency(t *testing.T) {
	g, cg := analyticsFixture(t)
	// TwoHopNeighbors must agree with the SpGEMM-based TwoHopGraph plus
	// the one-hop set.
	u := NodeID(1)
	fromAlgo := g.TwoHopNeighbors(u, 2)
	if !reflect.DeepEqual(fromAlgo, cg.TwoHopNeighbors(u, 2)) {
		t.Fatal("compressed two-hop disagrees")
	}
	sq := g.TwoHopGraph(2)
	set := map[uint32]bool{}
	for _, w := range g.Neighbors(u) {
		set[w] = true
	}
	for _, w := range sq.Neighbors(u) {
		set[w] = true
	}
	delete(set, u)
	if len(set) != len(fromAlgo) {
		t.Fatalf("two-hop size %d vs union size %d", len(fromAlgo), len(set))
	}
	for _, w := range fromAlgo {
		if !set[w] {
			t.Fatalf("node %d missing from SpGEMM union", w)
		}
	}
}

func TestClosenessAndColoringPublic(t *testing.T) {
	g, _ := analyticsFixture(t)
	cc := g.Closeness(2)
	if len(cc) != g.NumNodes() {
		t.Fatal("closeness length wrong")
	}
	sample := g.ClosenessOf([]NodeID{0, 1}, 2)
	if math.Abs(sample[0]-cc[0]) > 1e-12 || math.Abs(sample[1]-cc[1]) > 1e-12 {
		t.Fatal("sampled closeness disagrees with full sweep")
	}
	colors, used := g.ColorGraph(2)
	if used < 1 || len(colors) != g.NumNodes() {
		t.Fatalf("coloring: %d colors over %d nodes", used, len(colors))
	}
	for u := 0; u < g.NumNodes(); u++ {
		for _, w := range g.Neighbors(uint32(u)) {
			if int(w) != u && colors[u] == colors[w] {
				t.Fatalf("improper coloring at edge (%d,%d)", u, w)
			}
		}
	}
}

func TestCommunitiesAndDiameterPublic(t *testing.T) {
	g, _ := analyticsFixture(t)
	labels := g.Communities(10, 2)
	if len(labels) != g.NumNodes() {
		t.Fatal("label length wrong")
	}
	sizes := CommunitySizes(labels)
	if len(sizes) == 0 {
		t.Fatal("no communities")
	}
	q := g.Modularity(labels, 2)
	if q < -1 || q > 1 {
		t.Fatalf("modularity %g out of range", q)
	}
	if d := g.EstimateDiameter(0, 2); d < 1 {
		t.Fatalf("diameter estimate %d implausible", d)
	}
}

func TestCoreAndClusteringPublic(t *testing.T) {
	g, cg := analyticsFixture(t)
	if !reflect.DeepEqual(g.CoreNumbers(2), cg.CoreNumbers(2)) {
		t.Fatal("core numbers differ between plain and compressed")
	}
	lc, lcc := g.LocalClustering(2), cg.LocalClustering(2)
	for i := range lc {
		if math.Abs(lc[i]-lcc[i]) > 1e-12 {
			t.Fatal("local clustering differs")
		}
	}
	avg, count := g.GlobalClustering(2)
	avgC, countC := cg.GlobalClustering(2)
	if count != countC || math.Abs(avg-avgC) > 1e-12 {
		t.Fatal("global clustering differs")
	}
	if count == 0 || avg <= 0 || avg > 1 {
		t.Fatalf("implausible clustering: %g over %d nodes", avg, count)
	}
}

func TestReversePublic(t *testing.T) {
	g, err := Build([]Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	if err != nil {
		t.Fatal(err)
	}
	r := g.Reverse(2)
	if !r.HasEdge(1, 0) || !r.HasEdge(2, 1) || r.HasEdge(0, 1) {
		t.Fatalf("reverse edges wrong: %v", r.Edges())
	}
	if r.NumEdges() != g.NumEdges() {
		t.Fatal("edge count changed")
	}
}

func TestSpMVPublic(t *testing.T) {
	g, err := Build([]Edge{{U: 0, V: 1}, {U: 0, V: 2}})
	if err != nil {
		t.Fatal(err)
	}
	y, err := g.SpMV([]float64{0, 1, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(y, []float64{3, 0, 0}) {
		t.Fatalf("y = %v", y)
	}
	if _, err := g.SpMV([]float64{1}, 2); err == nil {
		t.Fatal("want dimension error")
	}
}
