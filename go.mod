module csrgraph

go 1.23
