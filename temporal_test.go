package csrgraph

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func wikiStyleEvents() []TemporalEdge {
	return []TemporalEdge{
		{U: 0, V: 1, T: 0}, {U: 1, V: 2, T: 0},
		{U: 2, V: 3, T: 1},
		{U: 1, V: 2, T: 2}, // deletion
		{U: 1, V: 2, T: 3}, // re-addition
	}
}

func TestBuildTemporalBasic(t *testing.T) {
	tg, err := BuildTemporal(wikiStyleEvents(), 4, WithProcs(2))
	if err != nil {
		t.Fatal(err)
	}
	if tg.NumFrames() != 4 || tg.NumNodes() != 4 {
		t.Fatalf("frames=%d nodes=%d", tg.NumFrames(), tg.NumNodes())
	}
	if !tg.Active(0, 1, 0) || tg.Active(2, 3, 0) {
		t.Fatal("frame 0 wrong")
	}
	if tg.Active(1, 2, 2) || !tg.Active(1, 2, 3) {
		t.Fatal("toggle sequence wrong")
	}
	if got := tg.ActiveNeighbors(1, 3); !reflect.DeepEqual(got, []uint32{2}) {
		t.Fatalf("ActiveNeighbors = %v", got)
	}
	snap := tg.Snapshot(1)
	if len(snap) != 3 {
		t.Fatalf("Snapshot(1) = %v", snap)
	}
}

func TestBuildTemporalUnsortedInputAndDuplicates(t *testing.T) {
	events := []TemporalEdge{
		{U: 1, V: 2, T: 3},
		{U: 0, V: 1, T: 0},
		{U: 0, V: 1, T: 0}, // duplicate within frame: must be dropped
	}
	tg, err := BuildTemporal(events, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !tg.Active(0, 1, 0) {
		t.Fatal("duplicate dedup broke the toggle parity")
	}
}

func TestBuildTemporalFromSnapshots(t *testing.T) {
	snaps := [][]Edge{
		{{U: 0, V: 1}},
		{{U: 0, V: 1}, {U: 1, V: 2}},
		{{U: 1, V: 2}},
	}
	tg, err := BuildTemporalFromSnapshots(snaps, WithProcs(2))
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range snaps {
		if got := tg.Snapshot(i); !reflect.DeepEqual(got, []Edge(want)) {
			t.Fatalf("Snapshot(%d) = %v, want %v", i, got, want)
		}
	}
}

func TestBuildTemporalWithNumNodes(t *testing.T) {
	tg, err := BuildTemporal(wikiStyleEvents(), 4, WithNumNodes(100))
	if err != nil {
		t.Fatal(err)
	}
	if tg.NumNodes() != 100 {
		t.Fatalf("NumNodes = %d", tg.NumNodes())
	}
	if _, err := BuildTemporal(wikiStyleEvents(), 4, WithNumNodes(2)); err == nil {
		t.Fatal("want error for too-small node space")
	}
}

func TestTemporalCompressRoundTrip(t *testing.T) {
	events, err := GenerateTemporal(60, 400, 30, 8, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	tg, err := BuildTemporal(events, 8, WithProcs(2))
	if err != nil {
		t.Fatal(err)
	}
	ct := tg.Compress()
	if ct.SizeBytes() >= tg.SizeBytes() {
		t.Fatalf("compressed %d >= plain %d", ct.SizeBytes(), tg.SizeBytes())
	}
	for u := uint32(0); u < 60; u += 7 {
		for f := 0; f < 8; f += 3 {
			if !reflect.DeepEqual(ct.ActiveNeighbors(u, f), tg.ActiveNeighbors(u, f)) {
				t.Fatalf("compressed ActiveNeighbors(%d,%d) disagrees", u, f)
			}
		}
	}
	var buf bytes.Buffer
	if _, err := ct.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCompressedTemporal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumFrames() != ct.NumFrames() || got.NumNodes() != ct.NumNodes() {
		t.Fatal("round trip metadata mismatch")
	}
	if got.Active(0, 1, 3) != ct.Active(0, 1, 3) {
		t.Fatal("round trip query mismatch")
	}
}

func TestTemporalDifferentialSmaller(t *testing.T) {
	events, err := GenerateTemporal(200, 3000, 20, 15, 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	tg, err := BuildTemporal(events, 15)
	if err != nil {
		t.Fatal(err)
	}
	if tg.SizeBytes() >= tg.FullSnapshotSizeBytes() {
		t.Fatalf("differential %d >= full %d", tg.SizeBytes(), tg.FullSnapshotSizeBytes())
	}
}

func TestReadTemporalEdgeList(t *testing.T) {
	events, err := ReadTemporalEdgeList(strings.NewReader("# t-graph\n0 1 0\n1 2 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[1] != (TemporalEdge{U: 1, V: 2, T: 1}) {
		t.Fatalf("events = %v", events)
	}
	if _, err := ReadTemporalEdgeList(strings.NewReader("0 1\n")); err == nil {
		t.Fatal("want error for missing time column")
	}
}

func TestCheckpointedTemporalPublic(t *testing.T) {
	events, err := GenerateTemporal(50, 300, 25, 12, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	tg, err := BuildTemporal(events, 12, WithProcs(2))
	if err != nil {
		t.Fatal(err)
	}
	ck, err := tg.Checkpoint(4)
	if err != nil {
		t.Fatal(err)
	}
	if ck.NumFrames() != 12 {
		t.Fatalf("frames = %d", ck.NumFrames())
	}
	if ck.SizeBytes() <= tg.SizeBytes() {
		t.Fatal("checkpoints should add space")
	}
	for u := NodeID(0); u < 50; u += 9 {
		for f := 0; f < 12; f += 4 {
			if !reflect.DeepEqual(ck.ActiveNeighbors(u, f), tg.ActiveNeighbors(u, f)) {
				t.Fatalf("checkpointed ActiveNeighbors(%d,%d) diverges", u, f)
			}
		}
	}
	if ck.Active(0, 1, 5) != tg.Active(0, 1, 5) {
		t.Fatal("checkpointed Active diverges")
	}
	if _, err := tg.Checkpoint(0); err == nil {
		t.Fatal("want error for interval 0")
	}
}

func TestTemporalBatchQueriesPublic(t *testing.T) {
	tg, err := BuildTemporal(wikiStyleEvents(), 4, WithProcs(2))
	if err != nil {
		t.Fatal(err)
	}
	ct := tg.Compress()
	queries := []ActivityQuery{
		{U: 0, V: 1, T: 0}, {U: 1, V: 2, T: 2}, {U: 1, V: 2, T: 3},
	}
	got := ct.ActiveBatch(queries, 2)
	want := []bool{true, false, true}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ActiveBatch = %v, want %v", got, want)
	}
	nq := []TemporalNeighborQuery{{U: 1, T: 3}, {U: 1, T: 2}}
	rows := ct.ActiveNeighborsBatch(nq, 2)
	if !reflect.DeepEqual(rows[0], []uint32{2}) || len(rows[1]) != 0 {
		t.Fatalf("ActiveNeighborsBatch = %v", rows)
	}
}

func TestDegreeTimelinePublic(t *testing.T) {
	tg, err := BuildTemporal(wikiStyleEvents(), 4, WithProcs(2))
	if err != nil {
		t.Fatal(err)
	}
	ct := tg.Compress()
	got := ct.DegreeTimeline(1)
	// Node 1: edge (1,2) present at frames 0,1, deleted at 2, re-added at 3.
	want := []int{1, 1, 0, 1}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("DegreeTimeline(1) = %v, want %v", got, want)
	}
	// Cross-check against ActiveNeighbors per frame.
	for f := 0; f < 4; f++ {
		if got[f] != len(ct.ActiveNeighbors(1, f)) {
			t.Fatalf("frame %d: timeline %d != neighbors %d", f, got[f], len(ct.ActiveNeighbors(1, f)))
		}
	}
}

func TestBuildTemporalEmpty(t *testing.T) {
	tg, err := BuildTemporal(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tg.NumFrames() != 0 {
		t.Fatalf("frames = %d", tg.NumFrames())
	}
}
