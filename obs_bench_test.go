// Overhead gate for the observability layer: the query acceptance
// benchmarks re-run with metric collection off and on. The obs=off
// variants must match the uninstrumented baselines (the hot loops see one
// atomic load + branch per batch), and obs=on must stay within the ISSUE's
// <5% budget — the per-batch cost is two clock reads, two histogram
// observes, and a counter increment, amortized over thousands of queries.
//
//	BenchmarkNeighborsBatchObs  — Algorithm 6 batch decodes, obs=off|on
//	BenchmarkEdgesExistBatchObs — zero-decode existence probes, obs=off|on
//
// `make bench-obs` snapshots these (plus the internal/obs microbenchmarks)
// into BENCH_<date><suffix>.json.
package csrgraph

import (
	"fmt"
	"testing"

	"csrgraph/internal/obs"
	"csrgraph/internal/query"
)

// obsBenchStates runs fn under both metric-collection states, restoring
// the disabled default afterwards.
func obsBenchStates(b *testing.B, fn func(b *testing.B, label string)) {
	b.Helper()
	for _, on := range []bool{false, true} {
		obs.SetEnabled(on)
		label := "off"
		if on {
			label = "on"
		}
		fn(b, label)
	}
	obs.SetEnabled(false)
}

func BenchmarkNeighborsBatchObs(b *testing.B) {
	graphs := queryBenchSetup(b)
	const size = 2048
	for _, dist := range []string{"uniform", "powerlaw"} {
		g := graphs[dist]
		batch := queryBenchBatch(g, "uniform", size)
		obsBenchStates(b, func(b *testing.B, label string) {
			b.Run(fmt.Sprintf("dist=%s/obs=%s", dist, label), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					query.NeighborsBatch(g.pk, batch, 4)
				}
				b.ReportMetric(float64(size)*float64(b.N)/b.Elapsed().Seconds(), "queries/s")
			})
		})
	}
}

func BenchmarkEdgesExistBatchObs(b *testing.B) {
	graphs := queryBenchSetup(b)
	const nq = 4096
	for _, dist := range []string{"uniform", "powerlaw"} {
		g := graphs[dist]
		probes := queryBenchProbes(g, nq)
		obsBenchStates(b, func(b *testing.B, label string) {
			b.Run(fmt.Sprintf("dist=%s/obs=%s", dist, label), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					query.EdgesExistBatchSearch(g.pk, probes, 4)
				}
				b.ReportMetric(float64(nq)*float64(b.N)/b.Elapsed().Seconds(), "queries/s")
			})
		})
	}
}
