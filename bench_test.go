// Benchmarks regenerating the paper's evaluation artifacts, one per table
// and figure (see DESIGN.md §4 and EXPERIMENTS.md for the mapping):
//
//	BenchmarkTable2Construction — Table II's time column: packed-CSR
//	    construction per registry graph per processor count. Compression
//	    ratios are attached as custom metrics (edgelist_bytes_per_csr_byte).
//	BenchmarkFig6Series — Figure 6: the same construction sweep organized
//	    as time-vs-processors series (wall clock on this host).
//	BenchmarkFig7Speedup — Figure 7: speed-up percentages reported as
//	    custom metrics against the measured p=1 run.
//	BenchmarkQueryThroughput — Section V's motivation: batched query
//	    throughput on compressed CSR versus the edge-list and
//	    adjacency-list baselines.
//	BenchmarkPackedRowDecode — the raw GetRowFromCSR hot loop the
//	    width-specialized unpack kernels accelerate (see also
//	    BenchmarkUnpackWidths in internal/bitarray and
//	    BenchmarkParallelForOverhead in internal/parallel).
//	BenchmarkScanAblation, BenchmarkEdgeExistenceAblation,
//	BenchmarkTCSRConstruction — the DESIGN.md §5 ablations.
//
// The graphs are the registry stand-ins at 1/512 of the paper's sizes so
// `go test -bench .` completes quickly; use cmd/csrbench for full sweeps.
package csrgraph

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"csrgraph/internal/algo"
	"csrgraph/internal/baseline"
	"csrgraph/internal/csr"
	"csrgraph/internal/edgelist"
	"csrgraph/internal/gen"
	"csrgraph/internal/harness"
	"csrgraph/internal/order"
	"csrgraph/internal/prefixsum"
	"csrgraph/internal/query"
	"csrgraph/internal/spmatrix"
	"csrgraph/internal/stream"
	"csrgraph/internal/tcsr"
)

const benchScale = 512

var (
	benchOnce      sync.Once
	benchInstances []*harness.Instance
)

func benchSetup(b *testing.B) []*harness.Instance {
	b.Helper()
	benchOnce.Do(func() {
		for _, spec := range harness.Registry {
			inst, err := spec.Generate(benchScale, 4)
			if err != nil {
				panic(err)
			}
			benchInstances = append(benchInstances, inst)
		}
	})
	return benchInstances
}

// BenchmarkTable2Construction regenerates Table II's measurement cells.
func BenchmarkTable2Construction(b *testing.B) {
	for _, inst := range benchSetup(b) {
		pk := csr.BuildPacked(inst.Edges, inst.NumNodes, 1)
		for _, p := range harness.ProcessorCounts {
			b.Run(fmt.Sprintf("%s/p=%d", inst.Spec.Name, p), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					csr.BuildPacked(inst.Edges, inst.NumNodes, p)
				}
				b.ReportMetric(float64(inst.Edges.SizeBytes())/float64(pk.SizeBytes()), "edgelist_bytes_per_csr_byte")
			})
		}
	}
}

// BenchmarkFig6Series regenerates Figure 6: construction time versus
// processors, one sub-benchmark per series point.
func BenchmarkFig6Series(b *testing.B) {
	for _, inst := range benchSetup(b) {
		for _, p := range harness.ProcessorCounts {
			b.Run(fmt.Sprintf("%s/procs=%d", inst.Spec.Name, p), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					csr.BuildPacked(inst.Edges, inst.NumNodes, p)
				}
			})
		}
	}
}

// BenchmarkFig7Speedup regenerates Figure 7: the speed-up (%) of each
// processor count over the measured p=1 time, attached as a custom metric.
// On a single-core host the wall-clock speed-up is near zero; the
// work-span model's view is reported alongside (model_speedup_pct), which
// is what cmd/csrbench -mode model prints.
func BenchmarkFig7Speedup(b *testing.B) {
	for _, inst := range benchSetup(b) {
		t1 := measureOnce(func() { csr.BuildPacked(inst.Edges, inst.NumNodes, 1) })
		model := harness.Calibrate(t1, inst.NumNodes, len(inst.Edges))
		for _, p := range harness.ProcessorCounts[1:] {
			b.Run(fmt.Sprintf("%s/p=%d", inst.Spec.Name, p), func(b *testing.B) {
				var tp time.Duration
				for i := 0; i < b.N; i++ {
					tp = measureOnce(func() { csr.BuildPacked(inst.Edges, inst.NumNodes, p) })
				}
				b.ReportMetric(100*float64(t1-tp)/float64(t1), "wallclock_speedup_pct")
				tm := model.SimulateConstruction(inst.NumNodes, len(inst.Edges), p)
				b.ReportMetric(100*float64(t1-tm)/float64(t1), "model_speedup_pct")
			})
		}
	}
}

func measureOnce(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}

// BenchmarkQueryThroughput compares batched queries on the compressed CSR
// against the paper's comparison structures (edge list, adjacency list).
func BenchmarkQueryThroughput(b *testing.B) {
	inst := benchSetup(b)[0] // LiveJournal stand-in
	m := csr.Build(inst.Edges, inst.NumNodes, 4)
	pk := csr.PackMatrix(m, 4)
	elg := baseline.NewEdgeListGraph(inst.Edges, inst.NumNodes)
	adj := baseline.NewAdjacencyList(inst.Edges, inst.NumNodes)

	const nq = 4096
	state := uint64(7)
	next := func() uint32 {
		state = state*6364136223846793005 + 1442695040888963407
		return uint32(state >> 33)
	}
	nodes := make([]edgelist.NodeID, nq)
	probes := make([]edgelist.Edge, nq)
	for i := range nodes {
		nodes[i] = next() % uint32(inst.NumNodes)
		probes[i] = edgelist.Edge{U: next() % uint32(inst.NumNodes), V: next() % uint32(inst.NumNodes)}
	}

	sources := []struct {
		name string
		g    query.Source
	}{
		{"csr", m}, {"packed", pk}, {"edgelist", elg}, {"adjlist", adj},
	}
	for _, s := range sources {
		b.Run("neighbors/"+s.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				query.NeighborsBatch(s.g, nodes, 4)
			}
			b.ReportMetric(float64(nq)*float64(b.N)/b.Elapsed().Seconds(), "queries/s")
		})
		b.Run("exists/"+s.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				query.EdgesExistBatchBinary(s.g, probes, 4)
			}
			b.ReportMetric(float64(nq)*float64(b.N)/b.Elapsed().Seconds(), "queries/s")
		})
	}
}

// BenchmarkPackedRowDecode measures the raw packed-row decode loop —
// GetRowFromCSR over every row, sequentially, no batching or result
// copies — isolating the bit-unpack kernels from query dispatch. The
// edges/s metric is rows' total neighbors decoded per second.
func BenchmarkPackedRowDecode(b *testing.B) {
	for _, inst := range benchSetup(b) {
		pk := csr.BuildPacked(inst.Edges, inst.NumNodes, 4)
		b.Run(inst.Spec.Name, func(b *testing.B) {
			var buf []uint32
			for i := 0; i < b.N; i++ {
				for u := 0; u < pk.NumNodes(); u++ {
					buf = pk.Row(buf, edgelist.NodeID(u))
				}
			}
			b.ReportMetric(float64(pk.NumEdges())*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
		})
	}
}

// BenchmarkScanAblation compares Algorithm 1's chunked scan against the
// two-level alternative (DESIGN.md §5 item 1).
func BenchmarkScanAblation(b *testing.B) {
	xs := make([]uint32, 1<<20)
	for i := range xs {
		xs[i] = uint32(i % 13)
	}
	buf := make([]uint32, len(xs))
	for _, p := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("algorithm1/p=%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				copy(buf, xs)
				prefixsum.Inclusive(buf, p)
			}
		})
		b.Run(fmt.Sprintf("twolevel/p=%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				copy(buf, xs)
				prefixsum.InclusiveTwoLevel(buf, p)
			}
		})
		b.Run(fmt.Sprintf("blelloch/p=%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				copy(buf, xs)
				prefixsum.InclusiveBlelloch(buf, p)
			}
		})
	}
}

// BenchmarkEdgeExistenceAblation compares the three Section V existence
// strategies on the packed CSR (DESIGN.md §5 item 2).
func BenchmarkEdgeExistenceAblation(b *testing.B) {
	inst := benchSetup(b)[2] // Orkut stand-in: densest rows
	pk := csr.BuildPacked(inst.Edges, inst.NumNodes, 4)
	// Use the hub node so the row is long enough for Algorithm 8 to matter.
	hub, best := uint32(0), 0
	for u := 0; u < pk.NumNodes(); u++ {
		if d := pk.Degree(uint32(u)); d > best {
			hub, best = uint32(u), d
		}
	}
	row := pk.Row(nil, hub)
	target := row[len(row)-1]
	b.Run("linear", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pk.HasEdge(hub, target)
		}
	})
	b.Run("binary", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pk.HasEdgeBinary(hub, target)
		}
	})
	b.Run("split/p=4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			query.EdgeExistsSplit(pk, hub, target, 4)
		}
	})
}

// BenchmarkTCSRConstruction measures Section IV's parallel temporal
// construction across processor counts.
func BenchmarkTCSRConstruction(b *testing.B) {
	const nodes, frames = 20000, 32
	events, err := gen.TemporalStream(nodes, 100_000, 2_000, frames, 11, 4)
	if err != nil {
		b.Fatal(err)
	}
	for _, p := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := tcsr.BuildFromEvents(events, nodes, frames, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAnalytics measures the graph-processing layer over the
// LiveJournal stand-in (symmetrized), on both the plain and packed CSR.
func BenchmarkAnalytics(b *testing.B) {
	inst := benchSetup(b)[0]
	sym := inst.Edges.Prepared(true, 4)
	n := sym.NumNodes()
	m := csr.Build(sym, n, 4)
	pk := csr.PackMatrix(m, 4)
	for name, g := range map[string]query.Source{"csr": m, "packed": pk} {
		b.Run("bfs/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				algo.BFS(g, 0, 4)
			}
		})
		b.Run("dobfs/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				algo.BFSDirectionOptimizing(g, g, 0, 4)
			}
		})
		b.Run("components/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				algo.ConnectedComponents(g, 4)
			}
		})
		b.Run("pagerank10/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				algo.PageRank(g, 0.85, 10, 0, 4)
			}
		})
	}
	b.Run("communities", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			algo.Communities(m, 5, 4)
		}
	})
	b.Run("betweenness-sample64", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			algo.BetweennessSample(m, n/64+1, 4)
		}
	})
	b.Run("scc", func(b *testing.B) {
		mt := spmatrix.Transpose(m, 4)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			algo.StronglyConnectedComponents(m, mt, 4)
		}
	})
	b.Run("coloring", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			algo.ColorGraph(m, 4)
		}
	})
	b.Run("mis", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			algo.MaximalIndependentSet(m, 4)
		}
	})
}

// BenchmarkStreamFlush measures the evolving-graph batch merge: base
// graph plus a churn batch folded into a fresh CSR.
func BenchmarkStreamFlush(b *testing.B) {
	inst := benchSetup(b)[1] // Pokec stand-in
	base := csr.Build(inst.Edges, inst.NumNodes, 4)
	churn := make([]edgelist.Edge, 10000)
	state := uint64(13)
	next := func() uint32 {
		state = state*6364136223846793005 + 1442695040888963407
		return uint32(state >> 33)
	}
	for i := range churn {
		churn[i] = edgelist.Edge{U: next() % uint32(inst.NumNodes), V: next() % uint32(inst.NumNodes)}
	}
	for _, p := range []int{1, 4} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sb := stream.NewBuilder(base, inst.NumNodes, p)
				sb.Add(churn...)
				sb.Flush()
			}
		})
	}
}

// BenchmarkTCSRCheckpointAblation measures temporal activity-query cost
// against the checkpoint interval (DESIGN.md §5's copy+log trade-off).
func BenchmarkTCSRCheckpointAblation(b *testing.B) {
	const nodes, frames = 10000, 64
	events, err := gen.TemporalStream(nodes, 50_000, 1_000, frames, 17, 4)
	if err != nil {
		b.Fatal(err)
	}
	tc, err := tcsr.BuildFromEvents(events, nodes, frames, 4)
	if err != nil {
		b.Fatal(err)
	}
	for _, interval := range []int{1, 8, 64} {
		ck, err := tcsr.NewCheckpointed(tc, interval, 4)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("interval=%d", interval), func(b *testing.B) {
			state := uint64(19)
			for i := 0; i < b.N; i++ {
				state = state*6364136223846793005 + 1442695040888963407
				u := uint32(state>>33) % nodes
				v := uint32(state>>13) % nodes
				t := int(state>>3) % frames
				ck.Active(u, v, t)
			}
			b.ReportMetric(float64(ck.SizeBytes()), "bytes")
		})
	}
}

// BenchmarkOrderingAblation packs the Pokec stand-in under the three node
// orderings and reports the delta-gamma payload per ordering — the
// compression lever of the web-graph literature the paper cites.
func BenchmarkOrderingAblation(b *testing.B) {
	inst := benchSetup(b)[1]
	m := csr.Build(inst.Edges, inst.NumNodes, 4)
	comparisons, err := order.CompareOrderings(m, 4)
	if err != nil {
		b.Fatal(err)
	}
	for _, cmp := range comparisons {
		b.Run(cmp.Ordering, func(b *testing.B) {
			var perm *order.Permutation
			switch cmp.Ordering {
			case "identity":
				perm = order.Identity(m.NumNodes())
			case "degree":
				perm = order.ByDegree(m, 4)
			case "bfs":
				perm = order.ByBFS(m, 0, 4)
			}
			for i := 0; i < b.N; i++ {
				relabeled, err := order.Apply(m, perm, 4)
				if err != nil {
					b.Fatal(err)
				}
				csr.PackDelta(relabeled, 4)
			}
			b.ReportMetric(float64(cmp.DeltaBytes), "delta_bytes")
			b.ReportMetric(float64(cmp.FixedBytes), "fixed_bytes")
		})
	}
}

// BenchmarkCompressionRatio is Table II's size columns: it performs no
// timing loop work beyond construction but reports the edge-list and
// packed-CSR sizes for every registry graph as metrics.
func BenchmarkCompressionRatio(b *testing.B) {
	for _, inst := range benchSetup(b) {
		b.Run(inst.Spec.Name, func(b *testing.B) {
			var pk *csr.Packed
			for i := 0; i < b.N; i++ {
				pk = csr.BuildPacked(inst.Edges, inst.NumNodes, 4)
			}
			b.ReportMetric(float64(inst.Edges.SizeBytes()), "edgelist_bytes")
			b.ReportMetric(float64(pk.SizeBytes()), "csr_bytes")
		})
	}
}
