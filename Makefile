# csrgraph development targets. Everything is plain `go` underneath; the
# Makefile just names the common invocations.

GO ?= go

.PHONY: all build test race vet fmt bench bench-quick fuzz experiments clean

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

# Full benchmark run (same command EXPERIMENTS.md references).
bench:
	$(GO) test -bench=. -benchmem ./...

# One iteration of every benchmark, for a fast sanity pass.
bench-quick:
	$(GO) test -bench=. -benchtime=1x ./...

# Short fuzzing pass over every fuzz target.
fuzz:
	$(GO) test -fuzz FuzzReadText -fuzztime 15s ./internal/edgelist/
	$(GO) test -fuzz FuzzReadBinary -fuzztime 15s ./internal/edgelist/
	$(GO) test -fuzz FuzzReadTemporalText -fuzztime 15s ./internal/edgelist/
	$(GO) test -fuzz FuzzDecodeVarint -fuzztime 15s ./internal/bitpack/
	$(GO) test -fuzz FuzzDecodeEliasGamma -fuzztime 15s ./internal/bitpack/
	$(GO) test -fuzz FuzzPackedUnmarshal -fuzztime 15s ./internal/bitpack/
	$(GO) test -fuzz FuzzReadPacked -fuzztime 15s ./internal/csr/
	$(GO) test -fuzz FuzzReadPacked -fuzztime 15s ./internal/tcsr/

# Regenerate the paper artifacts (Table II, Figures 6-7, CSV, SVG).
experiments:
	$(GO) run ./cmd/csrbench -experiment all -scale 64 -reps 3 \
		-csv results_scale64.csv -svg .
	$(GO) run ./cmd/tcsrbench -nodes 20000 -base 100000 -churn 2000 \
		-frames 50 -compare

clean:
	$(GO) clean ./...
	rm -f results_scale64.csv fig6.svg fig7.svg test_output.txt bench_output.txt
