# csrgraph development targets. Everything is plain `go` underneath; the
# Makefile just names the common invocations.

GO ?= go

# Benchmark time per sub-benchmark for the bench-json snapshot; raise for
# lower-variance trajectory points.
BENCHTIME ?= 100ms

.PHONY: all build build-cross test test-race race vet fmt fmt-check lint lint-timing lint-json bench bench-quick bench-json bench-obs bench-trace bench-compare bench-compare-query bench-compare-algo bench-compare-shard bench-startup bench-shard fuzz fuzz-smoke experiments clean

all: build vet lint test test-race

build:
	$(GO) build ./...

# Cross-compile check for the platform-split mmap code: the unix mapping
# path (linux, darwin) and the heap-copy fallback (windows) must all build.
build-cross:
	GOOS=linux $(GO) build ./...
	GOOS=darwin $(GO) build ./...
	GOOS=windows $(GO) build ./...

test:
	$(GO) test ./...

# Race-detect the concurrency hot spots on every verify pass: the parallel
# worker pool, the batched query dispatch, PackDirect's atomic-OR merge,
# the radix sort's chunked histogram/scatter passes, and the parallel
# construction/stream paths behind csr and tcsr are exactly the code the
# detector should be watching. `race` below covers the whole tree but is
# too slow for the default loop.
test-race:
	$(GO) test -race ./internal/parallel/... ./internal/query/... ./internal/bitpack/... ./internal/radix/... ./internal/edgelist/... ./internal/obs/... ./internal/server/... ./internal/tcsr/... ./internal/csr/... ./internal/stream/... ./internal/mgraph/... ./internal/frontier/... ./internal/algo/... ./internal/shard/... ./internal/trace/...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

# Fail (listing the files) when anything is not gofmt-clean; lint and CI
# both gate on this.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Project-specific static analysis (DESIGN.md §11): the csrlint analyzer
# suite enforcing hot-path allocation-freedom, metric naming, parallel-for
# closure hygiene, atomic access consistency, and error propagation. The
# suite's own fixture tests run first so a broken analyzer can't silently
# pass the tree.
lint: fmt-check
	$(GO) test ./lint/...
	$(GO) run ./lint/cmd/csrlint ./...

# Same suite with per-analyzer wall-time and finding-count accounting, for
# spotting an analyzer whose cost regressed.
lint-timing:
	$(GO) run ./lint/cmd/csrlint -timing ./...

# Machine-readable lint report (findings + per-analyzer timing); CI
# uploads this next to the benchmark snapshots.
lint-json:
	$(GO) run ./lint/cmd/csrlint -json ./... > csrlint.json || test -s csrlint.json

# Full benchmark run (same command EXPERIMENTS.md references).
bench:
	$(GO) test -bench=. -benchmem ./...

# One iteration of every benchmark, for a fast sanity pass.
bench-quick:
	$(GO) test -bench=. -benchtime=1x ./...

# Snapshot the tier-1 benchmark suite (root package: Table II, Fig 6/7,
# query throughput, ablations) as BENCH_<date>.json — one file per run, the
# perf trajectory this repo accumulates. cmd/benchjson filters the -json
# event stream down to benchmark results with all metrics.
bench-json:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime $(BENCHTIME) -json . \
		| $(GO) run ./cmd/benchjson > BENCH_$$(date +%Y-%m-%d)$(BENCH_SUFFIX).json

# Observability overhead snapshot: the metric-core microbenchmarks plus
# the query acceptance benchmarks under obs=off|on, appended to the same
# BENCH_<date>.json trajectory as bench-json. The obs=on variants gate the
# <5% overhead budget; pair them with `go run ./cmd/benchcompare -key obs
# -baseline off -new on`.
bench-obs:
	$(GO) test -run '^$$' -bench Obs -benchmem -benchtime $(BENCHTIME) -json . ./internal/obs \
		| $(GO) run ./cmd/benchjson > BENCH_$$(date +%Y-%m-%d)$(BENCH_SUFFIX).json

# Traversal-analytics snapshot: the frontier core (BFS sparse↔dense
# switching, bucketed k-core) vs the retained baselines at 10M edges,
# appended to the BENCH_<date>.json trajectory. Gate the speedup targets
# with `go run ./cmd/benchcompare -baseline legacy -new frontier` and
# `-baseline peel -new bucket` over the same run.
bench-algo:
	$(GO) test -run '^$$' -bench 'BenchmarkBFSFrontier|BenchmarkKCore' -benchmem -benchtime $(BENCHTIME) -json . \
		| $(GO) run ./cmd/benchjson > BENCH_$$(date +%Y-%m-%d)$(BENCH_SUFFIX).json

# Tracing overhead snapshot: the recorder microbenchmarks plus the 8-shard
# existence-probe acceptance benchmark under trace=off|sampled|always,
# appended to the BENCH_<date>.json trajectory like bench-json. The sampled
# variant gates the <=5% overhead budget at the production 1/256 rate; pair
# with `go run ./cmd/benchcompare -key trace -baseline off -new sampled`.
bench-trace:
	$(GO) test -run '^$$' -bench 'BenchmarkTrace|BenchmarkRecorder' -benchmem -benchtime $(BENCHTIME) -json . ./internal/trace \
		| $(GO) run ./cmd/benchjson > BENCH_$$(date +%Y-%m-%d)$(BENCH_SUFFIX).json

# Radix-vs-merge construction-sort delta table: runs BenchmarkSortByUV's
# algo= variants and pairs them through cmd/benchcompare.
bench-compare:
	$(GO) test -run '^$$' -bench BenchmarkSortByUV -benchtime $(BENCHTIME) . \
		| $(GO) run ./cmd/benchcompare

# Query-engine delta tables: zero-decode search vs the linear baseline
# (algo= variants) and warm vs cold hot-row cache (cache= variants).
bench-compare-query:
	$(GO) test -run '^$$' -bench 'BenchmarkEdgesExistBatch|BenchmarkNeighborsBatch' \
		-benchtime $(BENCHTIME) . | tee /tmp/benchq.txt \
		| $(GO) run ./cmd/benchcompare -baseline linear -new search
	$(GO) run ./cmd/benchcompare -key cache -baseline cold -new warm < /tmp/benchq.txt

# Frontier-vs-baseline regression gate: pairs the algo= variants of the
# traversal and k-core suites (legacy vs frontier BFS, peel vs bucket
# k-core). The speedup columns are the acceptance numbers DESIGN.md §13
# quotes; CI documents this as the pre-merge gate for algorithm changes.
bench-compare-algo:
	$(GO) test -run '^$$' -bench 'BenchmarkBFSFrontier|BenchmarkKCore' \
		-benchtime $(BENCHTIME) . | tee /tmp/bencha.txt \
		| $(GO) run ./cmd/benchcompare -baseline legacy -new frontier
	$(GO) run ./cmd/benchcompare -baseline peel -new bucket < /tmp/bencha.txt

# Sharded serving-tier snapshot: the scatter-gather router's aggregate
# batch throughput across shard counts (shards=1|2|4|8) against the
# single-engine baseline (shards=single), appended to the BENCH_<date>.json
# trajectory like bench-json. The powerlaw EdgesExistBatch pairing is the
# tier's acceptance number (DESIGN.md §14).
bench-shard:
	$(GO) test -run '^$$' -bench 'BenchmarkShardEdgesExistBatch|BenchmarkShardNeighborsBatch' \
		-benchmem -benchtime $(BENCHTIME) -json . \
		| $(GO) run ./cmd/benchjson > BENCH_$$(date +%Y-%m-%d)$(BENCH_SUFFIX).json

# Sharded-vs-single delta tables: pairs the shards= variants of the
# serving-tier suites (single-engine baseline vs the 8-shard router).
bench-compare-shard:
	$(GO) test -run '^$$' -bench 'BenchmarkShardEdgesExistBatch|BenchmarkShardNeighborsBatch' \
		-benchtime $(BENCHTIME) . \
		| $(GO) run ./cmd/benchcompare -key shards -baseline single -new 8

# Cold-start delta table: mmap-backed container load vs legacy stream load
# vs full rebuild at 10M edges, appended to the BENCH_<date>.json
# trajectory like bench-json. Startup iterations are seconds-long, so the
# benchtime is an iteration count.
bench-startup:
	$(GO) test -run '^$$' -bench BenchmarkStartup -benchmem -benchtime 5x -json . \
		| $(GO) run ./cmd/benchjson > BENCH_$$(date +%Y-%m-%d)$(BENCH_SUFFIX).json

# Short fuzzing pass over every fuzz target.
FUZZTIME ?= 15s
fuzz:
	$(GO) test -fuzz FuzzRadixSort -fuzztime $(FUZZTIME) ./internal/radix/
	$(GO) test -fuzz FuzzUnpackKernels -fuzztime $(FUZZTIME) ./internal/bitarray/
	$(GO) test -fuzz FuzzReadText -fuzztime $(FUZZTIME) ./internal/edgelist/
	$(GO) test -fuzz FuzzReadBinary -fuzztime $(FUZZTIME) ./internal/edgelist/
	$(GO) test -fuzz FuzzReadTemporalText -fuzztime $(FUZZTIME) ./internal/edgelist/
	$(GO) test -fuzz FuzzDecodeVarint -fuzztime $(FUZZTIME) ./internal/bitpack/
	$(GO) test -fuzz FuzzDecodeEliasGamma -fuzztime $(FUZZTIME) ./internal/bitpack/
	$(GO) test -fuzz FuzzPackedUnmarshal -fuzztime $(FUZZTIME) ./internal/bitpack/
	$(GO) test -fuzz FuzzReadPacked -fuzztime $(FUZZTIME) ./internal/csr/
	$(GO) test -fuzz FuzzReadPacked -fuzztime $(FUZZTIME) ./internal/tcsr/
	$(GO) test -fuzz FuzzParseContainer -fuzztime $(FUZZTIME) ./internal/mgraph/
	$(GO) test -fuzz FuzzEdgeMap -fuzztime $(FUZZTIME) ./internal/frontier/

# CI's bounded fuzz gate: every target for 10s.
fuzz-smoke:
	$(MAKE) fuzz FUZZTIME=10s

# Regenerate the paper artifacts (Table II, Figures 6-7, CSV, SVG).
experiments:
	$(GO) run ./cmd/csrbench -experiment all -scale 64 -reps 3 \
		-csv results_scale64.csv -svg .
	$(GO) run ./cmd/tcsrbench -nodes 20000 -base 100000 -churn 2000 \
		-frames 50 -compare

clean:
	$(GO) clean ./...
	rm -f results_scale64.csv fig6.svg fig7.svg test_output.txt bench_output.txt
